"""Content filters attached to subscriptions (producer-side routing).

A :class:`SubscriptionFilter` is the deployment-owned predicate of one
*filtered subscription*: the producer evaluates it against every buffered
tuple before putting the tuple on the wire, so a consumer that only wants a
slice of a stream (a shard fragment's key-hash slice) never receives -- and
never pays serialization, transport, or ingress-drop work for -- the
foreign remainder.  Control tuples (boundaries, undos, REC_DONE markers)
always pass: punctuation and failure semantics are slice-independent.

Two properties make filtered subscriptions safe under DPC's replica
machinery:

* **Cursor translation.**  Subscription cursors stay in the coordinates of
  the *full* logical stream (the replica-independent ``stable_seq`` stamped
  on every stable tuple).  A filtered subscriber therefore observes stamped
  positions with gaps; when it re-subscribes (replica switch, crash
  recovery) it quotes the last stamp it received, the producer translates
  that stamp back into a buffer position, and replays the *filtered* suffix.
  The replay batch is flagged so the consumer can tell a legitimate
  filter gap from a stale-cursor race (see
  :meth:`repro.core.input_streams.InputStreamMonitor.record_tuple`).

* **Epoch determinism.**  A filter is a piecewise function of the tuple's
  serialization timestamp: :meth:`advance` installs a new predicate for
  every tuple with ``stime >= cut_stime`` while older tuples keep routing
  through the predicate that governed them when they were first delivered.
  Routing is therefore a pure function of the tuple -- every replica, every
  replay, and every retry routes a tuple identically -- which is what keeps
  a live rebalance (bucket handoff between shard fragments) gap-free and
  duplicate-free: tuples below the cut belong to the old owner, tuples at
  or above it to the new one, and a tie group (tuples sharing an stime)
  can never straddle the cut.

One filter object is shared by every replica-pair subscription of one
consumer fragment (both replicas of ``shard2`` subscribe to both replicas
of ``split`` through the same object), so advancing an epoch re-routes the
whole fragment at once, on the producer side and in every consumer's
re-subscription state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Mapping

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..spe.tuples import StreamTuple

#: Deterministic tuple predicate (same shape as repro.topology.SelectPredicate).
Predicate = Callable[[Mapping[str, Any]], bool]


class SubscriptionFilter:
    """The content predicate of one filtered subscription, with stime epochs."""

    def __init__(self, predicate: Predicate, name: str) -> None:
        if not name:
            raise ConfigurationError("subscription filter needs a non-empty name")
        self.name = name
        #: ``(cut_stime, predicate)`` pairs; epoch i governs tuples with
        #: ``cut_stime[i] <= stime < cut_stime[i+1]``.  The first epoch
        #: starts at -inf (it governs everything until the first advance).
        self._epochs: list[tuple[float, Predicate]] = [(float("-inf"), predicate)]

    # ------------------------------------------------------------------ epochs
    def advance(self, cut_stime: float, predicate: Predicate) -> None:
        """Install ``predicate`` for every tuple with ``stime >= cut_stime``.

        Cuts must move forward: re-routing tuples an earlier epoch already
        governed would break the determinism that makes replays safe.
        """
        last_cut, _ = self._epochs[-1]
        if cut_stime <= last_cut:
            raise ConfigurationError(
                f"filter {self.name!r}: epoch cut {cut_stime:g} does not advance "
                f"past the current cut {last_cut:g}"
            )
        self._epochs.append((cut_stime, predicate))

    @property
    def epochs(self) -> int:
        """Number of installed epochs (1 until the first :meth:`advance`)."""
        return len(self._epochs)

    @property
    def key(self) -> str:
        """Stable grouping key: subscribers sharing it share multicast batches.

        The epoch count is part of the key so that batches formed before an
        :meth:`advance` are never merged with batches formed after it.
        """
        return f"{self.name}#{len(self._epochs)}"

    # ------------------------------------------------------------------ evaluation
    def predicate_for(self, stime: float) -> Predicate:
        """The predicate governing tuples serialized at ``stime``."""
        for cut, predicate in reversed(self._epochs):
            if stime >= cut:
                return predicate
        return self._epochs[0][1]  # pragma: no cover - first cut is -inf

    def passes(self, item: "StreamTuple") -> bool:
        """Whether ``item`` should reach this subscription's consumer."""
        if not item.is_data:
            return True
        return bool(self.predicate_for(item.stime)(item.values))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SubscriptionFilter {self.name!r} epochs={len(self._epochs)}>"
