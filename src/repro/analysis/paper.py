"""Reference values and claims from the paper.

This module encodes, per experiment (table or figure of the evaluation
sections), what the paper itself reports:

* the *numeric* tables (Table III, IV, V) verbatim, so the reproduction can
  print paper-vs-measured side by side;
* the *qualitative* claims behind each figure (who wins, what grows, where
  the crossover falls), as :class:`PaperClaim` records referenced by the
  benchmarks and by ``EXPERIMENTS.md``.

Numbers come from the TODS extended version used as source text; absolute
latencies were measured on the authors' Pentium-IV testbed and are not
expected to match a simulation -- the claims capture the *shape* that must
hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

# --------------------------------------------------------------------------- numeric tables
#: Table III -- Proc_new (seconds) for different failure durations (seconds),
#: single replicated node, X = 3 s.
PAPER_TABLE3: Mapping[float, float] = {
    2.0: 2.2,
    4.0: 2.8,
    6.0: 2.8,
    8.0: 2.8,
    10.0: 2.8,
    12.0: 2.8,
    14.0: 2.8,
    16.0: 2.8,
    30.0: 2.8,
    45.0: 2.8,
    60.0: 2.8,
}


@dataclass(frozen=True)
class OverheadReference:
    """One column of Table IV / V (latencies in milliseconds)."""

    parameter_ms: float
    minimum: float
    maximum: float
    average: float
    stddev: float


#: Table IV -- serialization latency vs SUnion bucket size (boundary interval 10 ms).
PAPER_TABLE4: Sequence[OverheadReference] = (
    OverheadReference(0, 0, 5, 0.0, 0.0),
    OverheadReference(10, 12, 26, 13.3, 1.9),
    OverheadReference(50, 12, 64, 31.1, 14.5),
    OverheadReference(100, 12, 113, 56.6, 28.7),
    OverheadReference(150, 13, 165, 81.5, 43.1),
    OverheadReference(200, 13, 213, 106.5, 57.5),
    OverheadReference(300, 13, 313, 156.6, 86.2),
    OverheadReference(500, 14, 514, 258.0, 144.3),
)

#: Table V -- serialization latency vs boundary interval (bucket size 10 ms).
PAPER_TABLE5: Sequence[OverheadReference] = (
    OverheadReference(0, 0, 5, 0.0, 0.0),
    OverheadReference(10, 12, 26, 13.3, 1.9),
    OverheadReference(50, 14, 70, 37.3, 16.6),
    OverheadReference(100, 15, 121, 62.1, 30.4),
    OverheadReference(150, 17, 170, 87.0, 43.7),
    OverheadReference(200, 19, 219, 111.6, 56.9),
    OverheadReference(300, 20, 317, 166.2, 87.3),
    OverheadReference(500, 25, 520, 269.4, 141.9),
)

#: Other point estimates quoted in the prose of the paper.
PAPER_CONSTANTS: Mapping[str, float] = {
    # Section 5.1: time to switch upstream replicas once a failure is detected.
    "switch_time_s": 0.040,
    # Section 5.1: worst-case failure-to-new-data time with a 100 ms keepalive.
    "detection_plus_switch_s": 0.140,
    # Section 5.2 / 6.1: availability bound used in the single-node experiments.
    "single_node_bound_s": 3.0,
    # Section 6.2: per-node delay bound used in the chain experiments.
    "chain_per_node_delay_s": 2.0,
    # Section 6.3: total budget and the value actually assigned per SUnion.
    "full_assignment_budget_s": 8.0,
    "full_assignment_delay_s": 6.5,
    # Section 6.3: longest failure the FULL assignment masks with no tentative tuples.
    "full_assignment_masked_failure_s": 6.5,
}


# --------------------------------------------------------------------------- qualitative claims
@dataclass(frozen=True)
class PaperClaim:
    """One claim of the paper tied to a table or figure.

    ``experiment_id`` matches the benchmark module naming
    (``table3``, ``fig13``, ...); ``claim`` is the sentence the reproduction
    must support; ``checks`` names the shape checks (see
    :mod:`repro.analysis.comparison`) that encode it.
    """

    experiment_id: str
    section: str
    title: str
    claim: str
    checks: Sequence[str] = field(default_factory=tuple)


PAPER_CLAIMS: Sequence[PaperClaim] = (
    PaperClaim(
        experiment_id="fig11a",
        section="5.1",
        title="Figure 11(a): overlapping failures",
        claim=(
            "With two overlapping input-stream failures, all tentative tuples are "
            "eventually corrected, corrections end with a REC_DONE, and no stable "
            "tuple is duplicated."
        ),
        checks=("eventually_consistent", "no_duplicates", "rec_done_present"),
    ),
    PaperClaim(
        experiment_id="fig11b",
        section="5.1",
        title="Figure 11(b): failure during recovery",
        claim=(
            "When a second failure starts during reconciliation, the node closes the "
            "correction burst with a REC_DONE, continues tentatively, and after the "
            "second failure heals corrects only the tuples produced during it."
        ),
        checks=("eventually_consistent", "no_duplicates", "rec_done_present"),
    ),
    PaperClaim(
        experiment_id="table3",
        section="5.2",
        title="Table III: Proc_new vs failure duration",
        claim=(
            "With one replicated node and X = 3 s, Proc_new stays constant (~2.8 s) "
            "and below the bound for every failure duration from 2 s to 60 s."
        ),
        checks=("below_bound", "flat_over_durations"),
    ),
    PaperClaim(
        experiment_id="fig13",
        section="6.1",
        title="Figure 13: six delay-policy variants, single node",
        claim=(
            "Process & Process keeps latency lowest but produces the most tentative "
            "tuples; Delay & Delay meets the bound for every failure duration while "
            "producing the fewest; the Suspend variants violate the bound once the "
            "failure (or the reconciliation) outlasts D."
        ),
        checks=("delay_delay_fewest_tentative", "suspend_breaks_bound"),
    ),
    PaperClaim(
        experiment_id="fig15",
        section="6.2",
        title="Figure 15: Proc_new vs chain depth",
        claim=(
            "Both policies meet the per-node bound (2 s per node); Delay & Delay's "
            "latency grows linearly with the chain depth while Process & Process "
            "stays close to the delay of a single node."
        ),
        checks=("both_meet_bound", "delay_grows_with_depth", "process_flat_with_depth"),
    ),
    PaperClaim(
        experiment_id="fig16",
        section="6.2",
        title="Figure 16: N_tentative vs chain depth, short failures",
        claim=(
            "For short failures (5-30 s) delaying reduces the number of tentative "
            "tuples, and the gain grows with the depth of the chain (it is "
            "proportional to the total delay through the chain)."
        ),
        checks=("delay_fewer_tentative_short",),
    ),
    PaperClaim(
        experiment_id="fig18",
        section="6.2",
        title="Figure 18: N_tentative for a 60-second failure",
        claim=(
            "For long failures the benefit of delaying disappears: Delay & Delay and "
            "Process & Process produce almost the same number of tentative tuples "
            "regardless of chain depth."
        ),
        checks=("delay_gain_negligible_long",),
    ),
    PaperClaim(
        experiment_id="fig19",
        section="6.3",
        title="Figure 19: Proc_new for delay assignments",
        claim=(
            "Assigning the whole budget (6.5 s of the 8 s) to every SUnion still "
            "meets the end-to-end availability requirement, because all SUnions "
            "downstream of a failure suspend at the same time."
        ),
        checks=("full_assignment_meets_bound",),
    ),
    PaperClaim(
        experiment_id="fig20",
        section="6.3",
        title="Figure 20: N_tentative for delay assignments",
        claim=(
            "The full assignment masks the 5-second failure completely (zero "
            "tentative tuples) while performing like Process & Process for longer "
            "failures."
        ),
        checks=("full_assignment_masks_short", "full_assignment_matches_long"),
    ),
    PaperClaim(
        experiment_id="table4",
        section="7",
        title="Table IV: serialization overhead vs bucket size",
        claim=(
            "Maximum and average per-tuple latency grow approximately linearly with "
            "the SUnion bucket size; the minimum stays near the transport floor."
        ),
        checks=("max_grows_linearly", "avg_grows_linearly"),
    ),
    PaperClaim(
        experiment_id="table5",
        section="7",
        title="Table V: serialization overhead vs boundary interval",
        claim=(
            "Maximum and average per-tuple latency grow approximately linearly with "
            "the boundary interval; values are slightly above the Table IV ones "
            "because boundaries arrive less often than data."
        ),
        checks=("max_grows_linearly", "avg_grows_linearly"),
    ),
)


def paper_claim(experiment_id: str) -> PaperClaim:
    """Return the paper claim registered for ``experiment_id``.

    Raises :class:`KeyError` when the experiment id is unknown, listing the
    known ids in the error message.
    """
    for claim in PAPER_CLAIMS:
        if claim.experiment_id == experiment_id:
            return claim
    known = ", ".join(c.experiment_id for c in PAPER_CLAIMS)
    raise KeyError(f"unknown experiment id {experiment_id!r}; known ids: {known}")
