"""Analysis and reporting utilities for the reproduction.

The :mod:`repro.analysis` package turns raw experiment output
(:class:`~repro.experiments.harness.ExperimentResult` lists, client traces)
into the artifacts the paper reports:

* :mod:`repro.analysis.paper` -- the paper's own numbers and qualitative
  claims, encoded so measured results can be compared against them;
* :mod:`repro.analysis.tables` -- pivoting and rendering of result tables
  (plain text, Markdown, CSV);
* :mod:`repro.analysis.traces` -- analysis of client output traces
  (failure episodes, correction bursts, ASCII plots of the Figure 11 style);
* :mod:`repro.analysis.comparison` -- shape checks (flatness, monotonicity,
  crossovers, who-wins) used by benchmarks and by the report generator;
* :mod:`repro.analysis.report` -- generation of the per-experiment
  paper-vs-measured report recorded in ``EXPERIMENTS.md``.
"""

from .comparison import (
    ShapeCheck,
    check_crossover,
    check_flat,
    check_monotonic,
    check_within,
    compare_policies,
)
from .paper import (
    PAPER_CLAIMS,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PaperClaim,
    paper_claim,
)
from .tables import (
    ResultTable,
    pivot_results,
    render_csv,
    render_markdown,
    render_text,
)
from .traces import (
    Episode,
    analyze_trace,
    ascii_plot,
    correction_episodes,
    output_gaps,
    tentative_episodes,
)
from .report import ExperimentReport, ReportSection
from .builders import (
    build_delay_assignment_section,
    build_fig15_section,
    build_overhead_section,
    build_quick_report,
    build_table3_section,
    build_tentative_vs_depth_section,
)

__all__ = [
    # paper reference data
    "PAPER_CLAIMS",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PaperClaim",
    "paper_claim",
    # tables
    "ResultTable",
    "pivot_results",
    "render_csv",
    "render_markdown",
    "render_text",
    # traces
    "Episode",
    "analyze_trace",
    "ascii_plot",
    "correction_episodes",
    "output_gaps",
    "tentative_episodes",
    # comparisons
    "ShapeCheck",
    "check_crossover",
    "check_flat",
    "check_monotonic",
    "check_within",
    "compare_policies",
    # report
    "ExperimentReport",
    "ReportSection",
    "build_delay_assignment_section",
    "build_fig15_section",
    "build_overhead_section",
    "build_quick_report",
    "build_table3_section",
    "build_tentative_vs_depth_section",
]
