"""Client-trace analysis.

A client records every tuple it receives as a
:class:`~repro.metrics.collector.TraceEntry`.  The paper presents these
traces directly (Figure 11 plots sequence number against arrival time) and
derives quantities from them (gaps in new data, tentative bursts, correction
bursts).  This module extracts those quantities and renders a terminal-sized
ASCII version of the Figure 11 plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..metrics.collector import TraceEntry

#: Tuple types that carry data in a trace.
_DATA_TYPES = ("insertion", "tentative")


@dataclass(frozen=True)
class Episode:
    """A contiguous burst of same-type tuples in a trace."""

    kind: str
    start: float
    end: float
    count: int

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class TraceAnalysis:
    """Everything derived from one client trace."""

    total_stable: int
    total_tentative: int
    total_rec_done: int
    tentative_episodes: Sequence[Episode]
    correction_episodes: Sequence[Episode]
    max_gap: float
    first_tentative_at: float | None
    last_correction_at: float | None

    @property
    def had_failure(self) -> bool:
        """True when the trace shows any tentative processing."""
        return self.total_tentative > 0

    @property
    def recovered(self) -> bool:
        """True when every tentative burst was followed by corrections."""
        return not self.tentative_episodes or bool(self.correction_episodes)


def _data_entries(trace: Sequence[TraceEntry]) -> list[TraceEntry]:
    return [entry for entry in trace if entry.tuple_type in _DATA_TYPES]


def tentative_episodes(trace: Sequence[TraceEntry]) -> list[Episode]:
    """Contiguous runs of tentative tuples (the failure-time output bursts)."""
    return _episodes(trace, "tentative")


def correction_episodes(trace: Sequence[TraceEntry]) -> list[Episode]:
    """Bursts of stable tuples that follow tentative ones (the correction bursts).

    A correction burst starts at the first stable tuple after tentative output
    and ends at the next REC_DONE marker (or at the last stable tuple of the
    burst when the trace has no marker).
    """
    episodes: list[Episode] = []
    seen_tentative = False
    burst_start: float | None = None
    burst_count = 0
    last_time = 0.0
    for entry in trace:
        last_time = entry.time
        if entry.tuple_type == "tentative":
            seen_tentative = True
            continue
        if entry.tuple_type == "insertion" and seen_tentative:
            if burst_start is None:
                burst_start = entry.time
            burst_count += 1
            continue
        if entry.tuple_type == "rec_done" and burst_start is not None:
            episodes.append(
                Episode(kind="correction", start=burst_start, end=entry.time, count=burst_count)
            )
            burst_start = None
            burst_count = 0
            seen_tentative = False
    if burst_start is not None and burst_count:
        episodes.append(
            Episode(kind="correction", start=burst_start, end=last_time, count=burst_count)
        )
    return episodes


def _episodes(trace: Sequence[TraceEntry], tuple_type: str) -> list[Episode]:
    episodes: list[Episode] = []
    start: float | None = None
    end = 0.0
    count = 0
    for entry in trace:
        if entry.tuple_type == tuple_type:
            if start is None:
                start = entry.time
            end = entry.time
            count += 1
        elif entry.tuple_type in _DATA_TYPES and start is not None:
            episodes.append(Episode(kind=tuple_type, start=start, end=end, count=count))
            start, count = None, 0
    if start is not None:
        episodes.append(Episode(kind=tuple_type, start=start, end=end, count=count))
    return episodes


def output_gaps(trace: Sequence[TraceEntry], threshold: float = 0.0) -> list[tuple[float, float]]:
    """(start, end) pairs of silences between *new* data tuples longer than ``threshold``.

    New data tuples are those whose stime exceeds every previously seen stime,
    matching the paper's NewOutput definition; corrections therefore do not
    close a gap.
    """
    gaps: list[tuple[float, float]] = []
    last_new_arrival: float | None = None
    max_stime = float("-inf")
    for entry in trace:
        if entry.tuple_type not in _DATA_TYPES:
            continue
        if entry.stime <= max_stime:
            continue
        max_stime = entry.stime
        if last_new_arrival is not None and entry.time - last_new_arrival > threshold:
            gaps.append((last_new_arrival, entry.time))
        last_new_arrival = entry.time
    return gaps


def analyze_trace(trace: Sequence[TraceEntry]) -> TraceAnalysis:
    """Summarize one client trace."""
    stable = sum(1 for entry in trace if entry.tuple_type == "insertion")
    tentative = sum(1 for entry in trace if entry.tuple_type == "tentative")
    rec_done = sum(1 for entry in trace if entry.tuple_type == "rec_done")
    tentative_eps = tentative_episodes(trace)
    correction_eps = correction_episodes(trace)
    gaps = output_gaps(trace)
    max_gap = max((end - start for start, end in gaps), default=0.0)
    first_tentative = tentative_eps[0].start if tentative_eps else None
    last_correction = correction_eps[-1].end if correction_eps else None
    return TraceAnalysis(
        total_stable=stable,
        total_tentative=tentative,
        total_rec_done=rec_done,
        tentative_episodes=tuple(tentative_eps),
        correction_episodes=tuple(correction_eps),
        max_gap=max_gap,
        first_tentative_at=first_tentative,
        last_correction_at=last_correction,
    )


# --------------------------------------------------------------------------- ASCII plotting
_MARKERS = {"insertion": "*", "tentative": "o", "rec_done": "R"}


def ascii_plot(
    trace: Sequence[TraceEntry],
    *,
    width: int = 72,
    height: int = 20,
    title: str = "output trace",
) -> str:
    """Plot sequence number against arrival time, Figure 11 style.

    Stable tuples are drawn as ``*``, tentative tuples as ``o``, and REC_DONE
    markers as ``R`` on the x-axis (the paper plots them as "a tuple with
    identifier zero").
    """
    points: list[tuple[float, float, str]] = []
    for entry in trace:
        if entry.tuple_type in _DATA_TYPES and isinstance(entry.sequence, (int, float)):
            points.append((entry.time, float(entry.sequence), entry.tuple_type))
        elif entry.tuple_type == "rec_done":
            points.append((entry.time, 0.0, "rec_done"))
    if not points:
        return f"{title}\n(no data)"
    min_t = min(p[0] for p in points)
    max_t = max(p[0] for p in points)
    min_s = min(p[1] for p in points)
    max_s = max(p[1] for p in points)
    span_t = max(max_t - min_t, 1e-9)
    span_s = max(max_s - min_s, 1e-9)
    grid = [[" "] * width for _ in range(height)]
    for time, seq, kind in points:
        column = min(int((time - min_t) / span_t * (width - 1)), width - 1)
        row = height - 1 - min(int((seq - min_s) / span_s * (height - 1)), height - 1)
        current = grid[row][column]
        marker = _MARKERS[kind]
        # Later markers do not overwrite REC_DONE; tentative never hides stable.
        if current == "R":
            continue
        if current == "*" and marker == "o":
            continue
        grid[row][column] = marker
    lines = [title]
    for row_index, row in enumerate(grid):
        seq_value = max_s - (row_index / max(height - 1, 1)) * span_s
        lines.append(f"{seq_value:>10.0f} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(f"{'':11}{min_t:<10.1f}{'time (s)':^{max(width - 20, 8)}}{max_t:>10.1f}")
    lines.append("legend: * stable   o tentative   R REC_DONE")
    return "\n".join(lines)
