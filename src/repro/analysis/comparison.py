"""Shape checks: encode the paper's qualitative claims as testable predicates.

The reproduction does not try to match the paper's absolute numbers (they
were measured on the authors' hardware); what must hold is the *shape* of
each result -- which policy wins, what stays flat, what grows, and where
crossovers fall.  The helpers in this module turn those statements into
:class:`ShapeCheck` verdicts used by the benchmarks, the report generator,
and the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..experiments.harness import ExperimentResult


@dataclass(frozen=True)
class ShapeCheck:
    """Outcome of one qualitative check."""

    name: str
    passed: bool
    detail: str

    def __bool__(self) -> bool:  # pragma: no cover - convenience only
        return self.passed

    def row(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name}: {self.detail}"


# --------------------------------------------------------------------------- numeric shapes
def check_within(name: str, value: float, bound: float, *, slack: float = 0.0) -> ShapeCheck:
    """``value`` must not exceed ``bound + slack``."""
    passed = value <= bound + slack
    return ShapeCheck(
        name=name,
        passed=passed,
        detail=f"value={value:.3f} bound={bound:.3f} slack={slack:.3f}",
    )


def check_flat(
    name: str,
    values: Sequence[float],
    *,
    relative_tolerance: float = 0.2,
    absolute_tolerance: float = 0.0,
) -> ShapeCheck:
    """The values must all lie within a band around their minimum.

    Used for "Proc_new stays constant regardless of failure duration"
    (Table III) and "latency does not grow with chain depth for Process &
    Process" (Figure 15).
    """
    if not values:
        return ShapeCheck(name=name, passed=False, detail="no values")
    low, high = min(values), max(values)
    allowed = low * (1.0 + relative_tolerance) + absolute_tolerance
    passed = high <= allowed
    return ShapeCheck(
        name=name,
        passed=passed,
        detail=f"min={low:.3f} max={high:.3f} allowed={allowed:.3f}",
    )


def check_monotonic(
    name: str,
    values: Sequence[float],
    *,
    increasing: bool = True,
    tolerance: float = 0.0,
) -> ShapeCheck:
    """The sequence must be (weakly) monotonic, within ``tolerance`` per step.

    Used for "latency grows with chain depth for Delay & Delay" (Figure 15)
    and the linear-growth claims of Tables IV and V.
    """
    if len(values) < 2:
        return ShapeCheck(name=name, passed=True, detail="fewer than two values")
    violations = []
    for index, (left, right) in enumerate(zip(values, values[1:])):
        delta = right - left if increasing else left - right
        if delta < -tolerance:
            violations.append((index, delta))
    passed = not violations
    direction = "increasing" if increasing else "decreasing"
    detail = f"{direction}, values={[round(v, 3) for v in values]}"
    if violations:
        detail += f", violations at steps {[v[0] for v in violations]}"
    return ShapeCheck(name=name, passed=passed, detail=detail)


def check_crossover(
    name: str,
    xs: Sequence[float],
    winner_then: Mapping[float, str],
    series: Mapping[str, Sequence[float]],
    *,
    lower_is_better: bool = True,
    tie_tolerance: float = 0.0,
) -> ShapeCheck:
    """Check who wins at each x and compare against the expected winner map.

    ``winner_then`` maps an x value to the label expected to win there (or to
    ``"tie"`` when the paper says the difference becomes negligible).  Used
    for the Figure 16 vs Figure 18 contrast: delaying wins for short failures
    and the gain disappears for long ones.
    """
    problems: list[str] = []
    for index, x in enumerate(xs):
        expected = winner_then.get(x)
        if expected is None:
            continue
        values = {label: data[index] for label, data in series.items()}
        best_value = min(values.values()) if lower_is_better else max(values.values())
        winners = {
            label
            for label, value in values.items()
            if abs(value - best_value) <= tie_tolerance
        }
        if expected == "tie":
            if len(winners) != len(values):
                problems.append(f"x={x}: expected tie, winners={sorted(winners)}")
        elif expected not in winners:
            problems.append(f"x={x}: expected {expected}, winners={sorted(winners)}")
    return ShapeCheck(
        name=name,
        passed=not problems,
        detail="; ".join(problems) if problems else f"winners as expected at {list(winner_then)}",
    )


# --------------------------------------------------------------------------- result-level shapes
def compare_policies(
    results: Sequence[ExperimentResult],
    *,
    metric: str = "n_tentative",
) -> dict[str, float]:
    """Aggregate ``metric`` per policy label (summing over the other axes)."""
    totals: dict[str, float] = {}
    for result in results:
        totals[result.label] = totals.get(result.label, 0.0) + float(getattr(result, metric))
    return totals


def availability_checks(
    results: Sequence[ExperimentResult],
    *,
    bound: float,
    slack: float = 0.75,
) -> list[ShapeCheck]:
    """One bound check per result plus an eventual-consistency check."""
    checks = []
    for result in results:
        checks.append(
            check_within(
                f"{result.label} / failure {result.failure_duration:g}s meets bound",
                result.proc_new,
                bound,
                slack=slack,
            )
        )
        checks.append(
            ShapeCheck(
                name=f"{result.label} / failure {result.failure_duration:g}s eventually consistent",
                passed=result.eventually_consistent,
                detail=f"stable={result.n_stable} tentative={result.n_tentative} undos={result.n_undos}",
            )
        )
    return checks


def summarize_checks(checks: Sequence[ShapeCheck]) -> tuple[int, int]:
    """(passed, total) over a list of checks."""
    passed = sum(1 for check in checks if check.passed)
    return passed, len(checks)
