"""Builders that turn experiment results into report sections.

Each builder takes the output of one experiment runner
(:mod:`repro.experiments`) and produces the corresponding
:class:`~repro.analysis.report.ReportSection`: the paper claim, the measured
table(s), and the shape checks that encode the claim.  ``EXPERIMENTS.md`` is a
rendering of these sections (plus prose); the ``python -m repro report``
command regenerates a quick-scale version of it from scratch.

The builders are pure functions of the result lists, so they are unit-tested
with synthetic results and reused both by the CLI and by notebooks or scripts
that want a programmatic paper-vs-measured comparison.
"""

from __future__ import annotations

from typing import Sequence

from ..experiments.harness import ExperimentResult
from ..experiments.overhead import OverheadRow
from .comparison import ShapeCheck, check_flat, check_monotonic, check_within
from .paper import PAPER_TABLE3, PAPER_TABLE4, PAPER_TABLE5, OverheadReference, paper_claim
from .report import ExperimentReport, ReportSection
from .tables import ResultTable, metric_by_duration, proc_new_by_depth, tentative_by_depth


def _by_label(results: Sequence[ExperimentResult]) -> dict[str, list[ExperimentResult]]:
    grouped: dict[str, list[ExperimentResult]] = {}
    for result in results:
        grouped.setdefault(result.label, []).append(result)
    return grouped


def _consistency_check(results: Sequence[ExperimentResult]) -> ShapeCheck:
    inconsistent = [r.label for r in results if not r.eventually_consistent]
    return ShapeCheck(
        name="every run is eventually consistent",
        passed=not inconsistent,
        detail="all runs" if not inconsistent else f"inconsistent: {sorted(set(inconsistent))}",
    )


# --------------------------------------------------------------------------- Table III
def build_table3_section(
    results: Sequence[ExperimentResult], *, bound: float = 3.0, slack: float = 0.75
) -> ReportSection:
    """Paper-vs-measured section for Table III (Proc_new vs failure duration)."""
    section = ReportSection(claim=paper_claim("table3"))
    section.configuration = {"X": bound, "replicas": 2}

    comparison = ResultTable(
        title="Proc_new (s), paper vs measured", row_label="failure (s)", column_label="source"
    )
    for result in sorted(results, key=lambda r: r.failure_duration):
        reference = PAPER_TABLE3.get(result.failure_duration)
        if reference is not None:
            comparison.set(result.failure_duration, "paper", reference)
        comparison.set(result.failure_duration, "measured", result.proc_new)
    section.add_table(comparison)
    section.add_table(metric_by_duration(list(results), "N_tentative", lambda r: r.n_tentative))

    section.add_check(_consistency_check(results))
    for result in results:
        section.add_check(
            check_within(
                f"failure {result.failure_duration:g} s meets the bound",
                result.proc_new,
                bound,
                slack=slack,
            )
        )
    unmasked = [r.proc_new for r in results if r.failure_duration > bound]
    if unmasked:
        section.add_check(check_flat("Proc_new flat beyond the masked range", unmasked))
    return section


# --------------------------------------------------------------------------- chain figures
def build_fig15_section(
    results: Sequence[ExperimentResult], *, per_node_delay: float = 2.0
) -> ReportSection:
    """Section for Figure 15 (Proc_new vs chain depth)."""
    section = ReportSection(claim=paper_claim("fig15"))
    section.configuration = {"per_node_delay": per_node_delay}
    section.add_table(proc_new_by_depth(list(results), "Proc_new (s) by chain depth"))

    section.add_check(_consistency_check(results))
    grouped = _by_label(results)
    process = sorted(
        (r for label, rs in grouped.items() if label.startswith("Process & Process") for r in rs),
        key=lambda r: r.chain_depth,
    )
    delay = sorted(
        (r for label, rs in grouped.items() if label.startswith("Delay & Delay") for r in rs),
        key=lambda r: r.chain_depth,
    )
    for result in results:
        section.add_check(
            check_within(
                f"{result.label} meets depth x D",
                result.proc_new,
                per_node_delay * result.chain_depth,
                slack=1.5,
            )
        )
    if process:
        section.add_check(
            check_flat(
                "Process & Process stays near a single node's delay",
                [r.proc_new for r in process],
                relative_tolerance=0.6,
            )
        )
    if len(delay) >= 2:
        section.add_check(
            check_monotonic(
                "Delay & Delay latency grows with depth", [r.proc_new for r in delay]
            )
        )
    return section


def build_tentative_vs_depth_section(
    results: Sequence[ExperimentResult], *, experiment_id: str
) -> ReportSection:
    """Section for Figure 16 (short failures) or Figure 18 (long failure)."""
    section = ReportSection(claim=paper_claim(experiment_id))
    durations = sorted({r.failure_duration for r in results})
    for duration in durations:
        subset = [r for r in results if r.failure_duration == duration]
        section.add_table(
            tentative_by_depth(subset, f"N_tentative by depth, {duration:g} s failure")
        )
    section.add_check(_consistency_check(results))

    grouped = _by_label(results)
    for duration in durations:
        for depth in sorted({r.chain_depth for r in results}):
            process = _find(grouped, "Process & Process", depth, duration)
            delay = _find(grouped, "Delay & Delay", depth, duration)
            if process is None or delay is None:
                continue
            if experiment_id == "fig16":
                section.add_check(
                    ShapeCheck(
                        name=f"delaying never produces more tentative tuples "
                        f"(depth {depth}, {duration:g} s)",
                        passed=delay.n_tentative <= process.n_tentative,
                        detail=f"delay={delay.n_tentative} process={process.n_tentative}",
                    )
                )
            else:
                saving = process.n_tentative - delay.n_tentative
                section.add_check(
                    ShapeCheck(
                        name=f"gain of delaying is marginal (depth {depth})",
                        passed=saving <= 0.2 * process.n_tentative + 100,
                        detail=f"saving={saving} of {process.n_tentative}",
                    )
                )
    return section


def _find(grouped, prefix: str, depth: int, duration: float):
    for label, results in grouped.items():
        if not label.startswith(prefix):
            continue
        for result in results:
            if result.chain_depth == depth and result.failure_duration == duration:
                return result
    return None


# --------------------------------------------------------------------------- delay assignments
def build_delay_assignment_section(
    results: Sequence[ExperimentResult],
    *,
    budget: float = 8.0,
    full_label: str = "Process & Process, D=6.5s each",
    uniform_label: str = "Process & Process, D=2s each",
) -> ReportSection:
    """Section covering Figures 19 and 20 (delay-assignment strategies)."""
    section = ReportSection(claim=paper_claim("fig20"))
    section.configuration = {"X": budget, "chain_depth": 4}
    section.add_table(
        metric_by_duration(list(results), "Proc_new (s) by failure duration", lambda r: r.proc_new)
    )
    section.add_table(
        metric_by_duration(list(results), "N_tentative by failure duration", lambda r: r.n_tentative)
    )
    section.add_check(_consistency_check(results))

    grouped = _by_label(results)
    for result in grouped.get(full_label, ()):
        section.add_check(
            check_within(
                f"whole-budget assignment meets X for the {result.failure_duration:g} s failure",
                result.proc_new,
                budget,
                slack=1.0,
            )
        )
    shortest = min((r.failure_duration for r in results), default=None)
    if shortest is not None:
        full_short = _find(grouped, full_label, 4, shortest)
        uniform_short = _find(grouped, uniform_label, 4, shortest)
        if full_short is not None:
            section.add_check(
                ShapeCheck(
                    name=f"whole-budget assignment masks the {shortest:g} s failure",
                    passed=full_short.n_tentative == 0,
                    detail=f"N_tentative={full_short.n_tentative}",
                )
            )
        if full_short is not None and uniform_short is not None:
            section.add_check(
                ShapeCheck(
                    name="uniform assignment does not mask it",
                    passed=uniform_short.n_tentative > 0,
                    detail=f"N_tentative={uniform_short.n_tentative}",
                )
            )
    return section


# --------------------------------------------------------------------------- overhead tables
def _overhead_comparison(
    rows: Sequence[OverheadRow], reference: Sequence[OverheadReference], title: str
) -> ResultTable:
    table = ResultTable(title=title, row_label="parameter (ms)", column_label="latency (ms)")
    reference_by_parameter = {ref.parameter_ms: ref for ref in reference}
    for row in rows:
        ms = row.latency.scaled(1000.0)
        key = f"{row.parameter_ms:.0f}"
        table.set(key, "measured max", ms.maximum)
        table.set(key, "measured avg", ms.average)
        ref = reference_by_parameter.get(row.parameter_ms)
        if ref is not None:
            table.set(key, "paper max", ref.maximum)
            table.set(key, "paper avg", ref.average)
    return table


def build_overhead_section(
    rows: Sequence[OverheadRow], *, experiment_id: str
) -> ReportSection:
    """Section for Table IV (``experiment_id='table4'``) or Table V (``'table5'``)."""
    reference = PAPER_TABLE4 if experiment_id == "table4" else PAPER_TABLE5
    section = ReportSection(claim=paper_claim(experiment_id))
    section.add_table(_overhead_comparison(rows, reference, "Serialization latency, paper vs measured"))

    measured = [row for row in rows if row.parameter_ms > 0]
    if len(measured) >= 2:
        section.add_check(
            check_monotonic(
                "maximum latency grows with the parameter",
                [row.latency.maximum for row in measured],
            )
        )
        section.add_check(
            check_monotonic(
                "average latency grows with the parameter",
                [row.latency.average for row in measured],
            )
        )
    baseline = next((row for row in rows if row.parameter_ms == 0), None)
    if baseline is not None and measured:
        section.add_check(
            ShapeCheck(
                name="serialization always costs more than the plain Union baseline",
                passed=all(row.latency.average >= baseline.latency.average for row in measured),
                detail=f"baseline avg={baseline.latency.average * 1000:.1f} ms",
            )
        )
    return section


# --------------------------------------------------------------------------- full quick report
def build_quick_report(
    *,
    aggregate_rate: float = 120.0,
    table3_durations: Sequence[float] = (2.0, 10.0, 30.0),
    chain_depths: Sequence[int] = (1, 2, 4),
    bucket_sizes: Sequence[float] = (0.05, 0.1, 0.3),
) -> ExperimentReport:
    """Run reduced sweeps of the headline experiments and assemble a report.

    This is what ``python -m repro report`` calls.  It runs simulations, so it
    takes a couple of minutes; the per-section builders above are the pure
    (and fast) part and can be fed pre-computed results instead.
    """
    from ..experiments import chains, overhead, single_node

    report = ExperimentReport(
        title="DPC reproduction — quick paper-vs-measured report",
        preamble=(
            "Reduced sweeps generated by `python -m repro report`; see EXPERIMENTS.md "
            "for the archived full results and the discussion of deviations."
        ),
    )
    report.add_section(
        build_table3_section(single_node.table3(table3_durations, aggregate_rate=aggregate_rate))
    )
    report.add_section(
        build_fig15_section(
            chains.fig15(list(chain_depths), aggregate_rate=aggregate_rate), per_node_delay=2.0
        )
    )
    report.add_section(
        build_tentative_vs_depth_section(
            chains.fig16((5.0,), depths=list(chain_depths), aggregate_rate=aggregate_rate),
            experiment_id="fig16",
        )
    )
    report.add_section(
        build_delay_assignment_section(
            chains.fig19_20((5.0, 10.0), aggregate_rate=aggregate_rate)
        )
    )
    report.add_section(build_overhead_section(overhead.table4(bucket_sizes), experiment_id="table4"))
    return report
