"""Result tables: pivoting and rendering of experiment results.

The benchmark harness produces flat lists of
:class:`~repro.experiments.harness.ExperimentResult`; the paper reports them
as two-dimensional tables (e.g. chain depth on the x-axis, one series per
policy).  This module pivots those lists into :class:`ResultTable` objects and
renders them as plain text, GitHub-flavoured Markdown, or CSV.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..experiments.harness import ExperimentResult

#: Extracts the value of one table cell from an experiment result.
ValueGetter = Callable[[ExperimentResult], object]

#: Extracts a row / column key from an experiment result.
KeyGetter = Callable[[ExperimentResult], object]


@dataclass
class ResultTable:
    """A two-dimensional table of values with labelled rows and columns."""

    title: str
    row_label: str
    column_label: str
    rows: list[object] = field(default_factory=list)
    columns: list[object] = field(default_factory=list)
    cells: dict[tuple[object, object], object] = field(default_factory=dict)

    # ------------------------------------------------------------------ construction
    def set(self, row: object, column: object, value: object) -> None:
        """Store ``value`` at (row, column), registering the keys in order of first use."""
        if row not in self.rows:
            self.rows.append(row)
        if column not in self.columns:
            self.columns.append(column)
        self.cells[(row, column)] = value

    def get(self, row: object, column: object, default: object = None) -> object:
        return self.cells.get((row, column), default)

    def row_values(self, row: object) -> list[object]:
        return [self.get(row, column) for column in self.columns]

    def column_values(self, column: object) -> list[object]:
        return [self.get(row, column) for row in self.rows]

    # ------------------------------------------------------------------ conversions
    def as_dict(self) -> dict:
        """Nested ``{row: {column: value}}`` mapping (JSON-friendly)."""
        return {row: {column: self.get(row, column) for column in self.columns} for row in self.rows}

    def transposed(self) -> "ResultTable":
        """Return a copy with rows and columns swapped."""
        table = ResultTable(
            title=self.title, row_label=self.column_label, column_label=self.row_label
        )
        for row in self.rows:
            for column in self.columns:
                if (row, column) in self.cells:
                    table.set(column, row, self.get(row, column))
        return table


def pivot_results(
    results: Sequence[ExperimentResult],
    *,
    title: str,
    row: KeyGetter,
    column: KeyGetter,
    value: ValueGetter,
    row_label: str = "row",
    column_label: str = "column",
) -> ResultTable:
    """Pivot a flat result list into a :class:`ResultTable`.

    ``row``, ``column``, and ``value`` are callables applied to each result;
    when two results land in the same cell the later one wins (experiments do
    not produce duplicates, so this only matters for hand-built inputs).
    """
    table = ResultTable(title=title, row_label=row_label, column_label=column_label)
    for result in results:
        table.set(row(result), column(result), value(result))
    return table


# --------------------------------------------------------------------------- formatting helpers
def _format_cell(value: object, float_format: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def render_text(table: ResultTable, float_format: str = ".2f") -> str:
    """Render ``table`` as an aligned plain-text table."""
    header = [f"{table.row_label} \\ {table.column_label}"] + [str(c) for c in table.columns]
    body = [
        [str(row)] + [_format_cell(table.get(row, column), float_format) for column in table.columns]
        for row in table.rows
    ]
    widths = [max(len(line[i]) for line in [header] + body) for i in range(len(header))]
    lines = [table.title, "-" * max(len(table.title), 1)]
    lines.append("  ".join(cell.ljust(width) for cell, width in zip(header, widths)))
    for line in body:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def render_markdown(table: ResultTable, float_format: str = ".2f") -> str:
    """Render ``table`` as a GitHub-flavoured Markdown table."""
    header = [f"{table.row_label} \\ {table.column_label}"] + [str(c) for c in table.columns]
    lines = ["| " + " | ".join(header) + " |"]
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in table.rows:
        cells = [str(row)] + [
            _format_cell(table.get(row, column), float_format) for column in table.columns
        ]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def render_csv(table: ResultTable, float_format: str = ".6g") -> str:
    """Render ``table`` as CSV text (row label in the first column)."""
    buffer = io.StringIO()
    header = [table.row_label] + [str(c) for c in table.columns]
    buffer.write(",".join(_escape_csv(cell) for cell in header) + "\n")
    for row in table.rows:
        cells = [str(row)] + [
            _format_cell(table.get(row, column), float_format) for column in table.columns
        ]
        buffer.write(",".join(_escape_csv(cell) for cell in cells) + "\n")
    return buffer.getvalue()


def _escape_csv(cell: str) -> str:
    if any(ch in cell for ch in ',"\n'):
        return '"' + cell.replace('"', '""') + '"'
    return cell


# --------------------------------------------------------------------------- canned pivots
def proc_new_by_depth(results: Sequence[ExperimentResult], title: str) -> ResultTable:
    """Figure 15 / 19 shape: Proc_new with chain depth as columns, policy label as rows."""
    return pivot_results(
        results,
        title=title,
        row=lambda r: r.label,
        column=lambda r: r.chain_depth,
        value=lambda r: r.proc_new,
        row_label="policy",
        column_label="depth",
    )


def tentative_by_depth(results: Sequence[ExperimentResult], title: str) -> ResultTable:
    """Figure 16 / 18 shape: N_tentative with chain depth as columns."""
    return pivot_results(
        results,
        title=title,
        row=lambda r: r.label,
        column=lambda r: r.chain_depth,
        value=lambda r: r.n_tentative,
        row_label="policy",
        column_label="depth",
    )


def metric_by_duration(
    results: Sequence[ExperimentResult],
    title: str,
    value: ValueGetter,
) -> ResultTable:
    """Table III / Figure 13 / Figure 20 shape: metric with failure duration as columns."""
    return pivot_results(
        results,
        title=title,
        row=lambda r: r.label,
        column=lambda r: r.failure_duration,
        value=value,
        row_label="policy",
        column_label="failure (s)",
    )


def side_by_side(
    measured: Mapping[object, object],
    reference: Mapping[object, object],
    *,
    title: str,
    row_label: str = "parameter",
) -> ResultTable:
    """Two-column paper-vs-measured table over a shared set of keys."""
    table = ResultTable(title=title, row_label=row_label, column_label="source")
    for key in reference:
        table.set(key, "paper", reference[key])
    for key in measured:
        table.set(key, "measured", measured[key])
    return table
