"""Experiment report generation (the content of ``EXPERIMENTS.md``).

An :class:`ExperimentReport` collects one :class:`ReportSection` per table or
figure of the paper, each recording the paper's claim, the configuration the
reproduction used, the measured table, and the shape-check verdicts.  The
report renders to Markdown; the repository's ``EXPERIMENTS.md`` is one such
rendering (plus hand-written context).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .comparison import ShapeCheck, summarize_checks
from .paper import PaperClaim
from .tables import ResultTable, render_markdown


@dataclass
class ReportSection:
    """Paper-vs-measured record for one experiment."""

    claim: PaperClaim
    configuration: dict = field(default_factory=dict)
    tables: list[ResultTable] = field(default_factory=list)
    checks: list[ShapeCheck] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------ construction
    def add_table(self, table: ResultTable) -> None:
        self.tables.append(table)

    def add_check(self, check: ShapeCheck) -> None:
        self.checks.append(check)

    def add_checks(self, checks: Sequence[ShapeCheck]) -> None:
        self.checks.extend(checks)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    @property
    def passed(self) -> bool:
        """True when every shape check of the section passed."""
        return all(check.passed for check in self.checks)

    # ------------------------------------------------------------------ rendering
    def to_markdown(self) -> str:
        passed, total = summarize_checks(self.checks)
        lines = [f"### {self.claim.title} (Section {self.claim.section})", ""]
        lines.append(f"**Paper claim.** {self.claim.claim}")
        lines.append("")
        if self.configuration:
            config = ", ".join(f"{key}={value}" for key, value in sorted(self.configuration.items()))
            lines.append(f"**Configuration.** {config}")
            lines.append("")
        for table in self.tables:
            lines.append(f"**{table.title}**")
            lines.append("")
            lines.append(render_markdown(table))
            lines.append("")
        if self.checks:
            lines.append(f"**Shape checks ({passed}/{total} passed).**")
            lines.append("")
            for check in self.checks:
                lines.append(f"- {check.row()}")
            lines.append("")
        for note in self.notes:
            lines.append(f"> {note}")
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"


@dataclass
class ExperimentReport:
    """A full paper-vs-measured report over many experiments."""

    title: str = "Experiment report"
    preamble: str = ""
    sections: list[ReportSection] = field(default_factory=list)

    def add_section(self, section: ReportSection) -> ReportSection:
        self.sections.append(section)
        return section

    def section_for(self, experiment_id: str) -> ReportSection:
        for section in self.sections:
            if section.claim.experiment_id == experiment_id:
                return section
        raise KeyError(f"report has no section for experiment {experiment_id!r}")

    @property
    def all_passed(self) -> bool:
        return all(section.passed for section in self.sections)

    def summary_table(self) -> ResultTable:
        """One row per experiment: id, section, checks passed."""
        table = ResultTable(
            title="Summary", row_label="experiment", column_label="field"
        )
        for section in self.sections:
            passed, total = summarize_checks(section.checks)
            table.set(section.claim.experiment_id, "paper section", section.claim.section)
            table.set(section.claim.experiment_id, "checks passed", f"{passed}/{total}")
            table.set(section.claim.experiment_id, "status", "ok" if section.passed else "MISMATCH")
        return table

    def to_markdown(self) -> str:
        lines = [f"# {self.title}", ""]
        if self.preamble:
            lines.append(self.preamble)
            lines.append("")
        lines.append("## Summary")
        lines.append("")
        lines.append(render_markdown(self.summary_table(), float_format=".3g"))
        lines.append("")
        lines.append("## Per-experiment results")
        lines.append("")
        for section in self.sections:
            lines.append(section.to_markdown())
        return "\n".join(lines).rstrip() + "\n"

    def write(self, path: str) -> None:
        """Write the Markdown rendering to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_markdown())
