"""Key-hash sharding: shard specs, hash-bucket assignments, and the planner.

The paper's SUnion/SOutput machinery is topology-agnostic, but until now the
reproduction's deployments only *split* streams with hand-written modulo
predicates (the diamond shape).  This module is the first-class scale-out
vocabulary:

* :func:`stable_key_hash` -- a process- and platform-stable hash (crc32 over
  a canonical byte encoding) so that every replica, every run, and every
  Python version routes a key to the same shard;
* :class:`ShardSpec` -- the declarative description of one sharding scheme
  (shard count, key attribute, hash-bucket count, tie-group width);
* :class:`ShardAssignment` -- a concrete, planner-owned mapping of hash
  buckets to shards.  Assignments are what deployments compile into
  ``select`` predicates: the predicates of one assignment are *disjoint and
  exhaustive* by construction (every bucket belongs to exactly one shard);
* :class:`ShardPlanner` -- produces the initial assignment and, given
  observed per-bucket loads, emits a :class:`RebalancePlan` (a sequence of
  :class:`ShardMove` bucket migrations) when shard loads skew.

Hashing runs per tuple, so the module is dependency-light (``zlib`` plus
:mod:`repro.errors`); :mod:`repro.topology` builds on it for the
``Topology.shard`` deployment shape.

Ordering constraint: the fan-in SUnion that re-merges the shards orders
stime ties by input port, so tuples sharing an stime must never straddle
shards.  ``ShardSpec.group`` encodes that: the shard key of a tuple is
``attribute_value // group``, and deployments partitioning an interleaved
multi-source workload set ``group`` to the source count (exactly like
``modulo_partition``).  Sharding on a key that does not refine the stime
tie-groups would reorder the merged stream.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from .errors import ConfigurationError

#: Default number of hash buckets; a multiple of every supported shard count
#: so the initial contiguous-range assignment is even.
DEFAULT_BUCKETS = 64

#: A shard predicate (same shape as :data:`repro.topology.SelectPredicate`).
ShardPredicate = Callable[[Mapping[str, Any]], bool]


def stable_key_hash(value: Any) -> int:
    """Hash ``value`` to a 32-bit integer, stably across processes and platforms.

    Python's builtin ``hash`` is randomized per process (``PYTHONHASHSEED``)
    and version-dependent, so shard routing uses crc32 over a canonical,
    type-tagged byte encoding instead -- the same trick the consistency
    managers use for their seeded tie-breaking RNG identity.
    """
    if isinstance(value, bool):
        data = b"b1" if value else b"b0"
    elif isinstance(value, int):
        data = b"i" + str(value).encode("ascii")
    elif isinstance(value, float):
        data = b"f" + repr(value).encode("ascii")
    elif isinstance(value, str):
        data = b"s" + value.encode("utf-8")
    elif isinstance(value, bytes):
        data = b"y" + value
    else:
        data = b"r" + repr(value).encode("utf-8", "backslashreplace")
    return zlib.crc32(data) & 0xFFFFFFFF


@dataclass(frozen=True)
class ShardSpec:
    """One sharding scheme: how a stream's tuples map to hash buckets.

    ``shards``
        Number of parallel shard fragments.
    ``key``
        Tuple attribute carrying the shard key (default the global sequence
        number the synthetic workloads stamp).
    ``buckets``
        Number of hash buckets.  Buckets, not raw hash values, are the unit
        of assignment and rebalancing: moving one bucket migrates a 1/buckets
        slice of the key space without re-hashing anything else.
    ``group``
        Tie-group width: the shard key is ``int(value) // group``, keeping
        runs of ``group`` consecutive key values on one shard.  Deployments
        over interleaved multi-source workloads set it to the source count so
        tuples sharing an stime never straddle shards (see the module
        docstring).
    """

    shards: int
    key: str = "seq"
    buckets: int = DEFAULT_BUCKETS
    group: int = 1

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if not self.key:
            raise ConfigurationError("shard key attribute cannot be empty")
        if self.buckets < self.shards:
            raise ConfigurationError(
                f"need at least one hash bucket per shard: {self.buckets} buckets "
                f"for {self.shards} shards"
            )
        if self.group < 1:
            raise ConfigurationError(f"group must be >= 1, got {self.group}")

    def group_key(self, value: Any) -> Any:
        """Collapse one raw key-attribute value into its tie-grouped shard key.

        Numeric keys are divided by ``group`` (runs of ``group`` consecutive
        values share a shard).  Non-numeric keys (the hot-key workloads shard
        on an opaque key attribute) require ``group == 1`` and are used as-is.
        """
        if not isinstance(value, (int, float, bool)):
            if self.group != 1:
                raise ConfigurationError(
                    f"shard key attribute {self.key!r} carries non-numeric value "
                    f"{value!r}, which cannot be tie-grouped by group={self.group}; "
                    f"non-numeric keys require group == 1 (e.g. "
                    f"Topology.shard(..., tie_group=1))"
                )
            return value
        return int(value) // self.group

    def key_of(self, values: Mapping[str, Any]) -> Any:
        """The (tie-grouped) shard key of one tuple's attribute mapping."""
        return self.group_key(values.get(self.key, 0))

    def bucket_of(self, key: Any) -> int:
        """The hash bucket a shard key falls into."""
        return stable_key_hash(key) % self.buckets


@dataclass(frozen=True)
class ShardAssignment:
    """A planner-owned mapping of every hash bucket to exactly one shard.

    ``buckets_by_shard[i]`` lists the buckets shard ``i`` owns.  The
    constructor validates the partition property (disjoint, exhaustive over
    ``range(spec.buckets)``, no shard empty), which is what makes the derived
    ``select`` predicates disjoint and exhaustive over any input stream.
    """

    spec: ShardSpec
    buckets_by_shard: tuple[tuple[int, ...], ...]
    #: Permit shards owning zero buckets.  Only drain plans set this: a
    #: drained shard keeps relaying punctuation (the fan-in merge still needs
    #: its port's boundaries) but routes no data, as a prelude to
    #: decommissioning the fragment.
    allow_empty: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "buckets_by_shard", tuple(tuple(b) for b in self.buckets_by_shard)
        )
        if len(self.buckets_by_shard) != self.spec.shards:
            raise ConfigurationError(
                f"assignment lists {len(self.buckets_by_shard)} shard(s) for a "
                f"{self.spec.shards}-shard spec"
            )
        seen: dict[int, int] = {}
        for shard, buckets in enumerate(self.buckets_by_shard):
            if not buckets and not self.allow_empty:
                raise ConfigurationError(f"shard {shard} owns no hash buckets")
            for bucket in buckets:
                if bucket in seen:
                    raise ConfigurationError(
                        f"bucket {bucket} assigned to both shard {seen[bucket]} "
                        f"and shard {shard}"
                    )
                seen[bucket] = shard
        missing = set(range(self.spec.buckets)) - set(seen)
        if missing:
            raise ConfigurationError(f"buckets {sorted(missing)} are assigned to no shard")
        object.__setattr__(self, "_shard_by_bucket", seen)
        # key -> shard routing memo shared by every predicate of this
        # assignment: each of the N shard fragments evaluates its predicate
        # against every tuple, so without the memo the same key is hashed N
        # times.  Bounded (cleared when full) so unbounded key spaces cannot
        # grow it without limit; purely derived state, so it does not affect
        # equality or hashing of the assignment.
        object.__setattr__(self, "_routing_memo", {})

    # ------------------------------------------------------------------ routing
    def shard_of_bucket(self, bucket: int) -> int:
        try:
            return self._shard_by_bucket[bucket]  # type: ignore[attr-defined]
        except KeyError as exc:
            raise ConfigurationError(
                f"bucket {bucket} out of range for {self.spec.buckets} buckets"
            ) from exc

    #: Routing-memo entries kept before the memo is reset.
    _MEMO_LIMIT = 65536

    def shard_of_key(self, key: Any) -> int:
        """The shard responsible for one (already tie-grouped) shard key."""
        memo: dict = self._routing_memo  # type: ignore[attr-defined]
        shard = memo.get(key)
        if shard is None:
            shard = self.shard_of_bucket(self.spec.bucket_of(key))
            if len(memo) >= self._MEMO_LIMIT:
                memo.clear()
            memo[key] = shard
        return shard

    def shard_of(self, values: Mapping[str, Any]) -> int:
        """The shard responsible for one tuple's attribute mapping."""
        return self.shard_of_key(self.spec.key_of(values))

    # ------------------------------------------------------------------ predicates
    def predicate(self, shard: int) -> ShardPredicate:
        """The ``select`` predicate of one shard fragment.

        The predicates of all shards of one assignment are disjoint and
        exhaustive: every tuple satisfies exactly one of them, because every
        hash bucket belongs to exactly one shard.
        """
        if not 0 <= shard < self.spec.shards:
            raise ConfigurationError(
                f"shard {shard} out of range for {self.spec.shards} shards"
            )

        # The predicate runs once per tuple per shard fragment (the split's
        # data path evaluates every fragment's slice), so the routing chain
        # (key extraction -> tie grouping -> memoized key-hash lookup) is
        # flattened into one closure over locals instead of four method calls.
        spec = self.spec
        key_attr = spec.key
        group = spec.group
        group_key = spec.group_key
        memo: dict = self._routing_memo  # type: ignore[attr-defined]
        shard_of_key = self.shard_of_key

        def select(values: Mapping[str, Any]) -> bool:
            value = values.get(key_attr, 0)
            if isinstance(value, (int, float, bool)):
                key = int(value) // group
            else:
                # Non-numeric keys: delegate for the group-width validation.
                key = group_key(value)
            route = memo.get(key)
            if route is None:
                route = shard_of_key(key)
            return route == shard

        select.__name__ = (
            f"keyhash_{self.spec.key}_div{self.spec.group}_shard{shard}of{self.spec.shards}"
        )
        return select

    def predicates(self) -> list[ShardPredicate]:
        return [self.predicate(shard) for shard in range(self.spec.shards)]

    # ------------------------------------------------------------------ load accounting
    def load_by_shard(self, bucket_loads: Mapping[int, float]) -> list[float]:
        """Total observed load per shard under this assignment."""
        return [
            float(sum(bucket_loads.get(bucket, 0.0) for bucket in buckets))
            for buckets in self.buckets_by_shard
        ]

    def imbalance(self, bucket_loads: Mapping[int, float]) -> float:
        """Peak-to-mean shard load ratio (1.0 = perfectly balanced)."""
        loads = self.load_by_shard(bucket_loads)
        total = sum(loads)
        if total <= 0:
            return 1.0
        return max(loads) / (total / len(loads))

    def move(self, bucket: int, target: int) -> "ShardAssignment":
        """A copy of this assignment with ``bucket`` reassigned to ``target``."""
        source = self.shard_of_bucket(bucket)
        if not 0 <= target < self.spec.shards:
            raise ConfigurationError(
                f"target shard {target} out of range for {self.spec.shards} shards"
            )
        if source == target:
            return self
        updated = [list(buckets) for buckets in self.buckets_by_shard]
        updated[source].remove(bucket)
        updated[target].append(bucket)
        return ShardAssignment(
            spec=self.spec,
            buckets_by_shard=tuple(tuple(b) for b in updated),
            allow_empty=self.allow_empty,
        )

    def empty_shards(self) -> list[int]:
        """Shards owning no hash buckets (drained fragments)."""
        return [
            shard for shard, buckets in enumerate(self.buckets_by_shard) if not buckets
        ]


@dataclass(frozen=True)
class ShardMove:
    """One bucket migration of a rebalancing plan."""

    bucket: int
    source: int
    target: int


@dataclass(frozen=True)
class RebalancePlan:
    """The planner's answer to skewed shard loads.

    ``moves`` applied in order transform ``before`` into ``after``; an empty
    plan means the observed loads were already within tolerance.
    """

    before: ShardAssignment
    after: ShardAssignment
    moves: tuple[ShardMove, ...]
    imbalance_before: float
    imbalance_after: float

    @property
    def is_noop(self) -> bool:
        return not self.moves


class ShardPlanner:
    """Plans bucket-to-shard assignments and load-driven rebalancing.

    The planner owns the partitioning vocabulary: deployments never write
    shard predicates by hand, they ask the planner for an assignment and
    compile its predicates into the shard fragments.
    """

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec

    def plan(self) -> ShardAssignment:
        """The initial assignment: contiguous, maximally even bucket ranges."""
        shards, buckets = self.spec.shards, self.spec.buckets
        ranges = []
        for shard in range(shards):
            start = shard * buckets // shards
            end = (shard + 1) * buckets // shards
            ranges.append(tuple(range(start, end)))
        return ShardAssignment(spec=self.spec, buckets_by_shard=tuple(ranges))

    def rebalance(
        self,
        assignment: ShardAssignment,
        bucket_loads: Mapping[int, float],
        tolerance: float = 0.10,
        excluded: Iterable[int] = (),
    ) -> RebalancePlan:
        """Emit bucket moves until no shard exceeds ``mean * (1 + tolerance)``.

        Deterministic greedy: while the most loaded shard is over tolerance,
        move its heaviest bucket that still *strictly reduces* the pairwise
        maximum with the least loaded shard (never emptying a shard).  Every
        accepted move strictly decreases the sum of squared shard loads, so
        the loop terminates; if no bucket qualifies the plan stops early.

        ``excluded`` names shards that must never *receive* buckets -- elastic
        deployments pass their decommissioned shard indices so a drained
        fragment stays empty.  Excluded shards are also left out of the load
        mean, otherwise permanently-empty fragments would drag the target
        down and make every live shard look overloaded.
        """
        if assignment.spec != self.spec:
            raise ConfigurationError("assignment was planned for a different shard spec")
        if tolerance < 0:
            raise ConfigurationError(f"tolerance cannot be negative, got {tolerance}")
        barred = set(excluded)
        if not set(range(self.spec.shards)) - barred:
            raise ConfigurationError("every shard is excluded from rebalancing")
        imbalance_before = assignment.imbalance(bucket_loads)
        current = assignment
        moves: list[ShardMove] = []
        while True:
            loads = current.load_by_shard(bucket_loads)
            eligible = [s for s in range(len(loads)) if s not in barred]
            mean = sum(loads[s] for s in eligible) / len(eligible)
            donor = max(range(len(loads)), key=lambda s: (loads[s], -s))
            recipient = min(eligible, key=lambda s: (loads[s], s))
            if donor == recipient or loads[donor] <= mean * (1.0 + tolerance):
                break
            # A candidate move must strictly reduce the pairwise maximum
            # (which also strictly decreases the squared-load sum, the
            # termination argument); zero-load buckets trivially pass the
            # inequality but migrate nothing, so they are excluded.
            candidates = [
                bucket
                for bucket in current.buckets_by_shard[donor]
                if len(current.buckets_by_shard[donor]) > 1
                and bucket_loads.get(bucket, 0.0) > 0
                and loads[recipient] + bucket_loads.get(bucket, 0.0) < loads[donor]
            ]
            if not candidates:
                break
            bucket = max(candidates, key=lambda b: (bucket_loads.get(b, 0.0), -b))
            current = current.move(bucket, recipient)
            moves.append(ShardMove(bucket=bucket, source=donor, target=recipient))
        return RebalancePlan(
            before=assignment,
            after=current,
            moves=tuple(moves),
            imbalance_before=imbalance_before,
            imbalance_after=current.imbalance(bucket_loads),
        )

    def expand(
        self,
        assignment: ShardAssignment,
        count: int = 1,
        bucket_loads: Mapping[int, float] | None = None,
        tolerance: float = 0.10,
        excluded: Iterable[int] = (),
    ) -> RebalancePlan:
        """Widen the scheme by ``count`` fresh shards and plan moves onto them.

        The returned plan's ``before`` assignment is already the *widened*
        one -- the fresh shards exist but own zero buckets (``allow_empty``),
        which is exactly the instant after a scale-out attaches the new
        fragments and before any data is cut over.  ``after`` populates them
        via the same greedy rebalance used for skew correction.  With no
        observed loads every bucket weighs 1, spreading buckets evenly by
        count.  The plan (and its assignments) carry the widened spec; the
        caller adopts it as the deployment's new sharding scheme.
        """
        if assignment.spec != self.spec:
            raise ConfigurationError("assignment was planned for a different shard spec")
        if count < 1:
            raise ConfigurationError(f"expand count must be >= 1, got {count}")
        wide_spec = ShardSpec(
            shards=self.spec.shards + count,
            key=self.spec.key,
            buckets=self.spec.buckets,
            group=self.spec.group,
        )
        before = ShardAssignment(
            spec=wide_spec,
            buckets_by_shard=assignment.buckets_by_shard + ((),) * count,
            allow_empty=True,
        )
        loads = dict(bucket_loads or {})
        if not loads:
            loads = {
                bucket: 1.0
                for buckets in assignment.buckets_by_shard
                for bucket in buckets
            }
        return ShardPlanner(wide_spec).rebalance(
            before, loads, tolerance=tolerance, excluded=excluded
        )

    def drain(
        self,
        assignment: ShardAssignment,
        shard: int,
        bucket_loads: Mapping[int, float] | None = None,
        excluded: Iterable[int] = (),
    ) -> RebalancePlan:
        """Plan the complete evacuation of one shard (a decommission prelude).

        Every bucket ``shard`` owns is reassigned to the remaining shards
        (minus any ``excluded`` -- already-decommissioned fragments), heaviest
        bucket first onto the currently least-loaded recipient (with no
        observed loads, buckets spread evenly by count).  The resulting
        ``after`` assignment leaves ``shard`` empty (``allow_empty``): a
        deployment applying the plan stops routing data to the fragment, which
        then only relays punctuation and is no longer a meaningful failure
        target.
        """
        if assignment.spec != self.spec:
            raise ConfigurationError("assignment was planned for a different shard spec")
        if not 0 <= shard < self.spec.shards:
            raise ConfigurationError(
                f"shard {shard} out of range for {self.spec.shards} shards"
            )
        if self.spec.shards < 2:
            raise ConfigurationError("cannot drain the only shard of a deployment")
        barred = set(excluded) | {shard}
        loads = dict(bucket_loads or {})
        imbalance_before = assignment.imbalance(loads)
        updated = [list(buckets) for buckets in assignment.buckets_by_shard]
        recipients = [s for s in range(self.spec.shards) if s not in barred]
        if not recipients:
            raise ConfigurationError(
                f"no recipient shard remains after excluding {sorted(barred)}"
            )
        recipient_load = {
            s: sum(loads.get(b, 0.0) for b in updated[s]) for s in recipients
        }
        recipient_count = {s: len(updated[s]) for s in recipients}
        moves: list[ShardMove] = []
        evacuating = sorted(
            updated[shard], key=lambda b: (-loads.get(b, 0.0), b)
        )
        for bucket in evacuating:
            target = min(
                recipients, key=lambda s: (recipient_load[s], recipient_count[s], s)
            )
            updated[target].append(bucket)
            recipient_load[target] += loads.get(bucket, 0.0)
            recipient_count[target] += 1
            moves.append(ShardMove(bucket=bucket, source=shard, target=target))
        updated[shard] = []
        after = ShardAssignment(
            spec=self.spec,
            buckets_by_shard=tuple(tuple(b) for b in updated),
            allow_empty=True,
        )
        return RebalancePlan(
            before=assignment,
            after=after,
            moves=tuple(moves),
            imbalance_before=imbalance_before,
            imbalance_after=after.imbalance(loads),
        )


def bucket_loads_from_keys(
    spec: ShardSpec, keys: Iterable[Any], *, grouped: bool = True
) -> dict[int, int]:
    """Count observed tuples per hash bucket (input to :meth:`ShardPlanner.rebalance`).

    ``keys`` are raw key-attribute values (e.g. a client ledger's sequence
    column); ``grouped=False`` treats them as already tie-grouped shard keys.
    """
    loads: dict[int, int] = {}
    for key in keys:
        shard_key = spec.group_key(key) if grouped else key
        bucket = spec.bucket_of(shard_key)
        loads[bucket] = loads.get(bucket, 0) + 1
    return loads
