"""Reproduction of "Fault-Tolerance in the Borealis Distributed Stream Processing System".

The package implements four layers (see DESIGN.md):

* :mod:`repro.spe` -- a Borealis-like stream processing engine with the
  DPC-extended data model and operators;
* :mod:`repro.sim` -- a deterministic discrete-event substrate standing in for
  the paper's physical cluster (network, failures, sources, clients);
* :mod:`repro.core` -- DPC itself: the state machine, consistency manager,
  upstream switching, checkpoint/redo reconciliation, and delay policies;
* :mod:`repro.runtime` -- the scenario layer: declarative
  :class:`~repro.runtime.ScenarioSpec` descriptions compiled into runnable
  :class:`~repro.runtime.SimulationRuntime` deployments.

Quick start::

    from repro import ScenarioSpec

    spec = ScenarioSpec.single_node(aggregate_rate=150.0).with_failure(
        "disconnect", start=5.0, duration=10.0
    )
    runtime = spec.run()
    print(runtime.client.summary())
"""

from .config import (
    BufferPolicy,
    DelayAssignment,
    DelayPolicy,
    DPCConfig,
    ProcessingPolicy,
    SimulationConfig,
)
from .errors import (
    BufferOverflowError,
    CheckpointError,
    ConfigurationError,
    DiagramError,
    NetworkError,
    OperatorError,
    ProtocolError,
    ReproError,
    SchemaError,
    SimulationError,
    StreamError,
)
# Note: repro.sim must be imported before repro.core -- the core package's
# modules import the simulator primitives, while repro.sim.client imports the
# ConsistencyManager; loading sim first keeps the import graph acyclic.
from .sharding import (
    RebalancePlan,
    ShardAssignment,
    ShardMove,
    ShardPlanner,
    ShardSpec,
    stable_key_hash,
)
from .topology import NodeSpec, Topology, modulo_partition
from .sim import (
    ClientApplication,
    Cluster,
    DataSource,
    FailureInjector,
    Network,
    Simulator,
    build_chain_cluster,
    build_dag_cluster,
    build_single_node_cluster,
)
from .core import NodeState, ProcessingNode, choose_upstream
from .spe import (
    Aggregate,
    Filter,
    Join,
    LocalEngine,
    Map,
    QueryDiagram,
    Schema,
    SJoin,
    SOutput,
    StreamTuple,
    SUnion,
    TupleType,
    Union,
    WindowSpec,
)
from .workloads import Scenario, FailureSpec, single_failure
from .runtime import ScenarioSpec, SimulationRuntime, run_scenario
from .deploy import Deployment, Placement, SubscriptionFilter
from . import deploy

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # configuration
    "BufferPolicy",
    "DelayAssignment",
    "DelayPolicy",
    "DPCConfig",
    "ProcessingPolicy",
    "SimulationConfig",
    # errors
    "ReproError",
    "SchemaError",
    "DiagramError",
    "OperatorError",
    "StreamError",
    "CheckpointError",
    "SimulationError",
    "NetworkError",
    "ConfigurationError",
    "ProtocolError",
    "BufferOverflowError",
    # DPC core
    "NodeState",
    "ProcessingNode",
    "choose_upstream",
    # deployment topology
    "NodeSpec",
    "Topology",
    "modulo_partition",
    # sharding
    "RebalancePlan",
    "ShardAssignment",
    "ShardMove",
    "ShardPlanner",
    "ShardSpec",
    "stable_key_hash",
    # simulation substrate
    "ClientApplication",
    "Cluster",
    "DataSource",
    "FailureInjector",
    "Network",
    "Simulator",
    "build_chain_cluster",
    "build_dag_cluster",
    "build_single_node_cluster",
    # SPE
    "StreamTuple",
    "TupleType",
    "Schema",
    "WindowSpec",
    "QueryDiagram",
    "LocalEngine",
    "Filter",
    "Map",
    "Union",
    "Aggregate",
    "Join",
    "SUnion",
    "SJoin",
    "SOutput",
    # workloads
    "Scenario",
    "FailureSpec",
    "single_failure",
    # runtime layer
    "ScenarioSpec",
    "SimulationRuntime",
    "run_scenario",
    # deployment control plane
    "deploy",
    "Deployment",
    "Placement",
    "SubscriptionFilter",
]
