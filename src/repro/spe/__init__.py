"""Borealis-like stream processing engine substrate.

This subpackage implements the SPE the paper's DPC protocol runs on: the
tuple data model extended with tentative/boundary/undo tuples, the
fundamental operators (Filter, Map, Aggregate, Join, Union), the serializing
operators DPC introduces (SUnion, SJoin, SOutput), query diagrams, and a
deterministic local execution engine with fragment-level checkpoint/restore.
"""

from .tuples import StreamTuple, TupleType
from .schema import Schema, Field, ANY_SCHEMA
from .streams import StreamWriter, StreamLog, apply_undo
from .windows import WindowSpec, PaneAssignment
from .accumulators import Accumulator, BufferingAccumulator, make_accumulator
from .checkpoint import DiagramCheckpoint, OperatorCheckpoint
from .query_diagram import QueryDiagram, linear_diagram, Connection, InputBinding, OutputBinding
from .engine import LocalEngine
from .operators import (
    Operator,
    StatelessOperator,
    Filter,
    Map,
    Union,
    Aggregate,
    AggregateSpec,
    Join,
    SUnion,
    SJoin,
    SOutput,
)

__all__ = [
    "StreamTuple",
    "TupleType",
    "Schema",
    "Field",
    "ANY_SCHEMA",
    "StreamWriter",
    "StreamLog",
    "apply_undo",
    "WindowSpec",
    "PaneAssignment",
    "Accumulator",
    "BufferingAccumulator",
    "make_accumulator",
    "DiagramCheckpoint",
    "OperatorCheckpoint",
    "QueryDiagram",
    "linear_diagram",
    "Connection",
    "InputBinding",
    "OutputBinding",
    "LocalEngine",
    "Operator",
    "StatelessOperator",
    "Filter",
    "Map",
    "Union",
    "Aggregate",
    "AggregateSpec",
    "Join",
    "SUnion",
    "SJoin",
    "SOutput",
]
