"""Window specifications for Aggregate and Join operators.

Borealis windows are defined over the serialization attribute (``stime`` in
this reproduction, or any integer attribute the application chooses).  To
keep operators deterministic -- a requirement of DPC (Section 2.1) -- windows
are aligned independently of the first tuple processed: window boundaries are
multiples of ``slide`` starting at ``origin`` (default 0), which corresponds
to Borealis' *independent-window-alignment* flag.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class WindowSpec:
    """A sliding (or tumbling) window over the serialization attribute.

    Attributes
    ----------
    size:
        Width of the window in stime units.
    slide:
        Distance between consecutive window starts.  ``slide == size`` gives
        tumbling windows; ``slide < size`` gives overlapping sliding windows.
    origin:
        Alignment origin; window starts are ``origin + k * slide``.
    """

    size: float
    slide: float | None = None
    origin: float = 0.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(f"window size must be positive, got {self.size}")
        slide = self.slide if self.slide is not None else self.size
        if slide <= 0:
            raise ConfigurationError(f"window slide must be positive, got {slide}")
        object.__setattr__(self, "slide", slide)

    @classmethod
    def tumbling(cls, size: float, origin: float = 0.0) -> "WindowSpec":
        """A non-overlapping window of width ``size``."""
        return cls(size=size, slide=size, origin=origin)

    @classmethod
    def sliding(cls, size: float, slide: float, origin: float = 0.0) -> "WindowSpec":
        """A window of width ``size`` advancing by ``slide``."""
        return cls(size=size, slide=slide, origin=origin)

    # ------------------------------------------------------------------ queries
    def first_window_index(self, stime: float) -> int:
        """Index of the earliest window containing ``stime``."""
        # Window k spans [origin + k*slide, origin + k*slide + size).
        span = int(math.ceil(self.size / self.slide)) - 1
        return self.last_window_index(stime) - span

    def last_window_index(self, stime: float) -> int:
        """Index of the latest window whose span starts at or before ``stime``."""
        index = int(math.floor((stime - self.origin) / self.slide))
        # floor() of a quotient that rounded toward zero (e.g. a subnormal
        # negative stime underflowing to -0.0) can overestimate by one: step
        # back until the window actually starts at or before stime.
        while self.window_start(index) > stime:
            index -= 1
        return index

    def window_indices(self, stime: float) -> range:
        """All window indices whose span contains ``stime``."""
        first = self.first_window_index(stime)
        last = self.last_window_index(stime)
        # Filter out windows that start after stime (can happen at exact edges).
        while first <= last and not self.contains(first, stime):
            first += 1
        return range(first, last + 1)

    def window_start(self, index: int) -> float:
        return self.origin + index * self.slide

    def window_end(self, index: int) -> float:
        """Exclusive end of window ``index``."""
        return self.window_start(index) + self.size

    def contains(self, index: int, stime: float) -> bool:
        """True when window ``index`` covers ``stime`` (inclusive start, exclusive end)."""
        return self.window_start(index) <= stime < self.window_end(index)

    def closed_windows(self, watermark: float) -> range:
        """Empty placeholder range; see :meth:`windows_closed_by`."""
        return range(0)

    def windows_closed_by(self, previous_watermark: float, watermark: float) -> range:
        """Window indices whose end falls in ``(previous_watermark, watermark]``.

        Operators call this when the stable watermark (the minimum boundary
        stime across inputs) advances: those windows will receive no further
        tuples and their results can be emitted.
        """
        if watermark <= previous_watermark:
            return range(0)
        if math.isinf(previous_watermark):
            # No earlier watermark: consider windows from the origin onwards.
            previous_watermark = self.origin
            if watermark <= previous_watermark:
                return range(0)
        first = int(math.ceil((previous_watermark - self.origin - self.size) / self.slide))
        last = int(math.floor((watermark - self.origin - self.size) / self.slide))
        # Guard against float error: ensure listed windows really are closed.
        while first <= last and self.window_end(first) <= previous_watermark:
            first += 1
        while first <= last and self.window_end(last) > watermark:
            last -= 1
        return range(first, last + 1)

    def is_closed(self, index: int, watermark: float) -> bool:
        """True once the watermark passes the end of window ``index``."""
        return watermark >= self.window_end(index)
