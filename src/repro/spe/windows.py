"""Window specifications for Aggregate and Join operators.

Borealis windows are defined over the serialization attribute (``stime`` in
this reproduction, or any integer attribute the application chooses).  To
keep operators deterministic -- a requirement of DPC (Section 2.1) -- windows
are aligned independently of the first tuple processed: window boundaries are
multiples of ``slide`` starting at ``origin`` (default 0), which corresponds
to Borealis' *independent-window-alignment* flag.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from ..errors import ConfigurationError

#: Upper bound on panes per window for a usable pane decomposition.  Window
#: specs whose size/slide ratio is pathological once expressed exactly (e.g.
#: ``(0.3, 0.1)``: both are *inexact* binary floats whose true gcd is ~2**-55,
#: giving astronomically many panes) fall back to per-window accumulation.
MAX_PANES_PER_WINDOW = 4096


@dataclass(frozen=True)
class PaneAssignment:
    """Decomposition of a window spec into equal, non-overlapping slices.

    A *pane* is the gcd-sized slice shared by all overlapping windows (the
    classic paired-window / panes construction): pane ``p`` spans
    ``[origin + p*size, origin + (p+1)*size)`` and window ``k`` is exactly the
    concatenation of panes ``k*per_slide .. k*per_slide + per_window - 1``.
    Every tuple lands in exactly one pane, so an aggregate maintains one
    mergeable partial per (pane, group) instead of one raw-value buffer per
    (window, group).
    """

    #: Pane width: ``gcd(size, slide)``, exactly representable as a float.
    size: float
    #: Panes per slide: ``slide / size`` of the pane (an exact integer).
    per_slide: int
    #: Panes per window: ``window size / pane size`` (an exact integer).
    per_window: int


def _pane_assignment(size: float, slide: float) -> PaneAssignment | None:
    """The exact pane decomposition of ``(size, slide)``, or None.

    Every float is a dyadic rational, so ``Fraction`` arithmetic computes the
    *exact* gcd of the two spans.  The decomposition is only usable when the
    gcd round-trips through a float unchanged (its numerator never exceeds
    the smaller operand's 53-bit significand, so in practice it always does)
    and the pane count per window stays below :data:`MAX_PANES_PER_WINDOW`.
    """
    try:
        exact_size, exact_slide = Fraction(size), Fraction(slide)
    except (ValueError, OverflowError):  # nan / inf window spans
        return None
    gcd = Fraction(
        math.gcd(
            exact_size.numerator * exact_slide.denominator,
            exact_slide.numerator * exact_size.denominator,
        ),
        exact_size.denominator * exact_slide.denominator,
    )
    per_window = exact_size / gcd
    per_slide = exact_slide / gcd
    if per_window > MAX_PANES_PER_WINDOW:
        return None
    pane_size = float(gcd)
    if Fraction(pane_size) != gcd:
        return None
    return PaneAssignment(size=pane_size, per_slide=int(per_slide), per_window=int(per_window))


@dataclass(frozen=True)
class WindowSpec:
    """A sliding (or tumbling) window over the serialization attribute.

    Attributes
    ----------
    size:
        Width of the window in stime units.
    slide:
        Distance between consecutive window starts.  ``slide == size`` gives
        tumbling windows; ``slide < size`` gives overlapping sliding windows.
    origin:
        Alignment origin; window starts are ``origin + k * slide``.

    The derived attribute ``pane`` holds the :class:`PaneAssignment` slicing
    the spec into gcd-sized panes (None when no float-exact decomposition
    exists); it is computed once at construction and is not a dataclass
    field, so equality and hashing still compare only the three spec values.
    """

    size: float
    slide: float | None = None
    origin: float = 0.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(f"window size must be positive, got {self.size}")
        slide = self.slide if self.slide is not None else self.size
        if slide <= 0:
            raise ConfigurationError(f"window slide must be positive, got {slide}")
        object.__setattr__(self, "slide", slide)
        # Derived (not a dataclass field): the pane decomposition, or None
        # when size/slide admit no float-exact gcd slicing.
        object.__setattr__(self, "pane", _pane_assignment(self.size, slide))

    @classmethod
    def tumbling(cls, size: float, origin: float = 0.0) -> "WindowSpec":
        """A non-overlapping window of width ``size``."""
        return cls(size=size, slide=size, origin=origin)

    @classmethod
    def sliding(cls, size: float, slide: float, origin: float = 0.0) -> "WindowSpec":
        """A window of width ``size`` advancing by ``slide``."""
        return cls(size=size, slide=slide, origin=origin)

    # ------------------------------------------------------------------ queries
    def first_window_index(self, stime: float) -> int:
        """Index of the earliest window containing ``stime``."""
        # Window k spans [origin + k*slide, origin + k*slide + size).
        span = int(math.ceil(self.size / self.slide)) - 1
        return self.last_window_index(stime) - span

    def last_window_index(self, stime: float) -> int:
        """Index of the latest window whose span starts at or before ``stime``."""
        index = int(math.floor((stime - self.origin) / self.slide))
        # floor() of a quotient that rounded toward zero (e.g. a subnormal
        # negative stime underflowing to -0.0) can overestimate by one: step
        # back until the window actually starts at or before stime.
        while self.window_start(index) > stime:
            index -= 1
        return index

    def window_indices(self, stime: float) -> range:
        """All window indices whose span contains ``stime``."""
        if self.pane is not None:
            return self.pane_windows(self.pane_index(stime))
        first = self.first_window_index(stime)
        last = self.last_window_index(stime)
        # Filter out windows that start after stime (can happen at exact edges).
        while first <= last and not self.contains(first, stime):
            first += 1
        return range(first, last + 1)

    def window_start(self, index: int) -> float:
        return self.origin + index * self.slide

    def window_end(self, index: int) -> float:
        """Exclusive end of window ``index``.

        With a pane decomposition the end is computed on the pane grid
        (``origin + (k*a + b) * pane``), which is the same real number as
        ``start + size`` but not always the same *float*; using the pane
        grid everywhere makes per-window and per-pane accumulation close
        windows at byte-identical stimes.
        """
        pane = self.pane
        if pane is not None:
            return self.origin + (index * pane.per_slide + pane.per_window) * pane.size
        return self.window_start(index) + self.size

    # ------------------------------------------------------------------ panes
    def pane_start(self, pane_index: int) -> float:
        """Inclusive start of pane ``pane_index`` (requires a decomposition)."""
        return self.origin + pane_index * self.pane.size

    def pane_index(self, stime: float) -> int:
        """Index of the single pane containing ``stime``.

        Half-open pane membership (``pane_start(p) <= stime < pane_start(p+1)``)
        is resolved on the float pane grid itself: the floor estimate is
        corrected in both directions, so the result is exact even when the
        division rounds across a pane edge.
        """
        pane = self.pane
        index = int(math.floor((stime - self.origin) / pane.size))
        while self.pane_start(index) > stime:
            index -= 1
        while self.pane_start(index + 1) <= stime:
            index += 1
        return index

    def window_panes(self, index: int) -> range:
        """The panes window ``index`` is the concatenation of."""
        pane = self.pane
        first = index * pane.per_slide
        return range(first, first + pane.per_window)

    def pane_windows(self, pane_index: int) -> range:
        """All window indices containing pane ``pane_index`` (integer math)."""
        pane = self.pane
        first = -((pane.per_window - 1 - pane_index) // pane.per_slide)
        return range(first, pane_index // pane.per_slide + 1)

    def last_pane_window(self, pane_index: int) -> int:
        """The latest window containing pane ``pane_index``.

        Once the watermark closes this window the pane's partials can never
        contribute to another result and may be garbage-collected.
        """
        return pane_index // self.pane.per_slide

    def contains(self, index: int, stime: float) -> bool:
        """True when window ``index`` covers ``stime`` (inclusive start, exclusive end)."""
        return self.window_start(index) <= stime < self.window_end(index)

    def closed_windows(self, watermark: float) -> range:
        """Empty placeholder range; see :meth:`windows_closed_by`."""
        return range(0)

    def windows_closed_by(self, previous_watermark: float, watermark: float) -> range:
        """Window indices whose end falls in ``(previous_watermark, watermark]``.

        Operators call this when the stable watermark (the minimum boundary
        stime across inputs) advances: those windows will receive no further
        tuples and their results can be emitted.
        """
        if watermark <= previous_watermark:
            return range(0)
        if math.isinf(previous_watermark):
            # No earlier watermark: consider windows from the origin onwards.
            previous_watermark = self.origin
            if watermark <= previous_watermark:
                return range(0)
        first = int(math.ceil((previous_watermark - self.origin - self.size) / self.slide))
        last = int(math.floor((watermark - self.origin - self.size) / self.slide))
        # Guard against float error: ensure listed windows really are closed.
        while first <= last and self.window_end(first) <= previous_watermark:
            first += 1
        while first <= last and self.window_end(last) > watermark:
            last -= 1
        return range(first, last + 1)

    def is_closed(self, index: int, watermark: float) -> bool:
        """True once the watermark passes the end of window ``index``."""
        return watermark >= self.window_end(index)
