"""Stream schemas.

Borealis streams are typed: every data tuple on a stream carries the same set
of attributes.  Schemas are used by the query-diagram validator to catch
mis-wired operators early and by operators (Map, Aggregate, Join) to describe
the shape of their output streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ..errors import SchemaError
from .tuples import StreamTuple

#: Attribute types understood by the schema validator.
_PYTHON_TYPES = {
    "int": int,
    "float": (int, float),
    "str": str,
    "bool": bool,
    "any": object,
}


@dataclass(frozen=True)
class Field:
    """A single named, typed attribute of a stream schema."""

    name: str
    type_name: str = "any"

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("field name cannot be empty")
        if self.type_name not in _PYTHON_TYPES:
            raise SchemaError(
                f"unknown field type {self.type_name!r}; expected one of {sorted(_PYTHON_TYPES)}"
            )

    def accepts(self, value: Any) -> bool:
        """True when ``value`` is a legal value for this field."""
        expected = _PYTHON_TYPES[self.type_name]
        if expected is object:
            return True
        if isinstance(value, bool) and self.type_name in ("int", "float"):
            # bool is a subclass of int but almost never what a schema means.
            return False
        return isinstance(value, expected)


@dataclass(frozen=True)
class Schema:
    """An ordered collection of :class:`Field` objects."""

    fields: tuple[Field, ...] = field(default_factory=tuple)

    @classmethod
    def of(cls, **field_types: str) -> "Schema":
        """Build a schema from keyword arguments, e.g. ``Schema.of(value="int")``."""
        return cls(tuple(Field(name, type_name) for name, type_name in field_types.items()))

    @classmethod
    def from_names(cls, names: Sequence[str]) -> "Schema":
        """Build an untyped schema from attribute names."""
        return cls(tuple(Field(name, "any") for name in names))

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def __contains__(self, name: str) -> bool:
        return name in self.names

    def __len__(self) -> int:
        return len(self.fields)

    def field(self, name: str) -> Field:
        """Return the field named ``name`` or raise :class:`SchemaError`."""
        for f in self.fields:
            if f.name == name:
                return f
        raise SchemaError(f"schema has no field {name!r}; available: {list(self.names)}")

    def validate_values(self, values: Mapping[str, Any]) -> None:
        """Raise :class:`SchemaError` unless ``values`` matches this schema."""
        missing = [f.name for f in self.fields if f.name not in values]
        if missing:
            raise SchemaError(f"missing attributes {missing}")
        extra = [name for name in values if name not in self]
        if extra:
            raise SchemaError(f"unexpected attributes {extra}; schema is {list(self.names)}")
        for f in self.fields:
            if not f.accepts(values[f.name]):
                raise SchemaError(
                    f"attribute {f.name!r}={values[f.name]!r} does not match type {f.type_name}"
                )

    def validate_tuple(self, item: StreamTuple) -> None:
        """Validate a data tuple; non-data tuples always pass."""
        if item.is_data:
            self.validate_values(item.values)

    def project(self, names: Iterable[str]) -> "Schema":
        """Return a schema with only the given field names, preserving order."""
        wanted = list(names)
        unknown = [n for n in wanted if n not in self]
        if unknown:
            raise SchemaError(f"cannot project unknown fields {unknown}")
        return Schema(tuple(f for f in self.fields if f.name in wanted))

    def merge(self, other: "Schema", prefix_self: str = "", prefix_other: str = "") -> "Schema":
        """Combine two schemas (used by Join); clashes must be prefixed away."""
        fields: list[Field] = []
        for f in self.fields:
            fields.append(Field(prefix_self + f.name, f.type_name))
        for f in other.fields:
            fields.append(Field(prefix_other + f.name, f.type_name))
        names = [f.name for f in fields]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(f"merged schema has duplicate fields {sorted(duplicates)}")
        return Schema(tuple(fields))


#: Schema used when a stream's shape is unknown or irrelevant (accepts anything).
ANY_SCHEMA = Schema()


def validate_stream_prefix(schema: Schema, tuples: Iterable[StreamTuple]) -> None:
    """Validate every data tuple of ``tuples`` against ``schema``."""
    if not schema.fields:
        return
    for item in tuples:
        schema.validate_tuple(item)
