"""Local execution engine for a query-diagram fragment.

The engine pushes tuples through the fragment in a run-to-completion manner:
every batch injected on an external input stream is fully propagated through
the operator graph before control returns.  This mirrors the role of the
"Query Processor" box in Figure 4 of the paper while staying deterministic,
which is what DPC requires of each node.

The engine also implements the fragment-level checkpoint/restore used by
checkpoint/redo reconciliation (Section 4.4.1): :meth:`LocalEngine.checkpoint`
suspends nothing (the engine is single-threaded by construction) and copies
the state of every operator; :meth:`LocalEngine.restore` reinitializes every
operator from the snapshot -- except ``SOutput`` operators, whose duplicate
suppression and output-stream identity must survive the rollback.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping

from ..errors import CheckpointError, DiagramError
from .checkpoint import DiagramCheckpoint
from .operators.base import Operator
from .operators.soutput import SOutput
from .query_diagram import QueryDiagram
from .tuples import StreamTuple


class LocalEngine:
    """Executes one query-diagram fragment on a single node."""

    def __init__(self, diagram: QueryDiagram) -> None:
        diagram.validate()
        self.diagram = diagram
        #: Number of data tuples processed since construction (drives the redo
        #: cost model used by the simulator).
        self.tuples_processed = 0
        self._order = {name: i for i, name in enumerate(diagram.topological_order())}
        # Routing tables precomputed once: the diagram is immutable after
        # validation, and resolving operators / connections per work item
        # would otherwise dominate the drain loop.
        self._operators = dict(diagram.operators)
        self._output_of = {o.operator: o.stream for o in diagram.outputs}
        self._downstream = {
            name: [(c.target, c.port) for c in diagram.downstream_of(name)]
            for name in diagram.operators
        }

    # ------------------------------------------------------------------ execution
    def push(self, input_stream: str, tuples: Iterable[StreamTuple]) -> dict[str, list[StreamTuple]]:
        """Push ``tuples`` arriving on ``input_stream`` through the fragment.

        Returns a mapping of external output stream name to the tuples
        produced on it by this batch.
        """
        bindings = [b for b in self.diagram.inputs if b.stream == input_stream]
        if not bindings:
            raise DiagramError(
                f"fragment {self.diagram.name!r} has no input stream {input_stream!r}"
            )
        tuples = list(tuples)
        outputs: dict[str, list[StreamTuple]] = {o.stream: [] for o in self.diagram.outputs}
        work: deque[tuple[str, int, list[StreamTuple]]] = deque()
        for binding in bindings:
            if tuples:
                work.append((binding.operator, binding.port, tuples))
        self._drain(work, outputs)
        return outputs

    def push_operator(self, operator_name: str, port: int, tuples: Iterable[StreamTuple]) -> dict[str, list[StreamTuple]]:
        """Push a batch directly into an operator (used by the node's input SUnions)."""
        outputs: dict[str, list[StreamTuple]] = {o.stream: [] for o in self.diagram.outputs}
        work: deque[tuple[str, int, list[StreamTuple]]] = deque()
        tuples = list(tuples)
        if tuples:
            work.append((operator_name, port, tuples))
        self._drain(work, outputs)
        return outputs

    def push_operator_outputs(
        self, operator_name: str, produced: Iterable[StreamTuple]
    ) -> dict[str, list[StreamTuple]]:
        """Route tuples already produced by ``operator_name`` to its consumers.

        Used when the processing node forces an SUnion to emit buffered
        buckets tentatively: the forced tuples did not flow through
        :meth:`push`, so this method injects them into the downstream
        connections (and output bindings) of the producing operator.
        """
        produced = list(produced)
        outputs: dict[str, list[StreamTuple]] = {o.stream: [] for o in self.diagram.outputs}
        stream = self._output_of.get(operator_name)
        if stream is not None:
            outputs[stream].extend(produced)
        work: deque[tuple[str, int, list[StreamTuple]]] = deque()
        if produced:
            for target, port in self._downstream[operator_name]:
                work.append((target, port, produced))
        self._drain(work, outputs)
        return outputs

    def _drain(
        self,
        work: deque,
        outputs: dict[str, list[StreamTuple]],
    ) -> None:
        # Batch-at-a-time execution: each work item carries a vector of tuples
        # that the operator consumes run-to-completion before its outputs are
        # forwarded, also as one batch, to every downstream connection.
        operators = self._operators
        output_of = self._output_of
        downstream = self._downstream
        popleft = work.popleft
        append = work.append
        while work:
            operator_name, port, items = popleft()
            produced = operators[operator_name].process_batch(port, items)
            self.tuples_processed += sum(1 for item in items if item.is_data)
            if not produced:
                continue
            stream = output_of.get(operator_name)
            if stream is not None:
                outputs[stream].extend(produced)
            for target, target_port in downstream[operator_name]:
                append((target, target_port, produced))

    # ------------------------------------------------------------------ checkpoint / restore
    def checkpoint(self, created_at: float = 0.0) -> DiagramCheckpoint:
        """Snapshot the state of every operator in the fragment."""
        states = {name: {"op": op.checkpoint()} for name, op in self.diagram.operators.items()}
        # DiagramCheckpoint deep-copies; wrap OperatorCheckpoint objects directly.
        return DiagramCheckpoint.capture(
            created_at=created_at,
            operator_states={name: dict(state["op"].state) for name, state in states.items()},
        )

    def restore(self, snapshot: DiagramCheckpoint) -> None:
        """Reinitialize every operator (except SOutputs) from ``snapshot``."""
        if not snapshot.matches(set(self.diagram.operators)):
            raise CheckpointError(
                f"checkpoint {snapshot.checkpoint_id} does not match fragment "
                f"{self.diagram.name!r}"
            )
        from .checkpoint import OperatorCheckpoint

        for name, operator in self.diagram.operators.items():
            if isinstance(operator, SOutput) or getattr(operator, "survives_restore", False):
                continue
            operator.restore(OperatorCheckpoint(operator_name=name, state=snapshot.operator_state(name)))

    # ------------------------------------------------------------------ helpers
    def soutputs(self) -> list[SOutput]:
        """All SOutput operators in the fragment, in topological order."""
        ordered = sorted(
            (name for name, op in self.diagram.operators.items() if isinstance(op, SOutput)),
            key=lambda name: self._order[name],
        )
        return [self.diagram.operators[name] for name in ordered]  # type: ignore[list-item]

    def soutput_for(self, output_stream: str) -> SOutput:
        """The SOutput producing ``output_stream`` (raises if it is not an SOutput)."""
        for binding in self.diagram.outputs:
            if binding.stream == output_stream:
                operator = self.diagram.operator(binding.operator)
                if not isinstance(operator, SOutput):
                    raise DiagramError(
                        f"output stream {output_stream!r} is not produced by an SOutput"
                    )
                return operator
        raise DiagramError(f"unknown output stream {output_stream!r}")

    def note_checkpoint_on_outputs(self) -> None:
        """Tell every SOutput that a fragment checkpoint was just taken."""
        for soutput in self.soutputs():
            soutput.note_checkpoint()

    def entry_operators(self, input_stream: str) -> list[tuple[str, int]]:
        """(operator, port) pairs fed by external ``input_stream``."""
        return [
            (b.operator, b.port) for b in self.diagram.inputs if b.stream == input_stream
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LocalEngine diagram={self.diagram.name!r} processed={self.tuples_processed}>"
