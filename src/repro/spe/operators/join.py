"""Join operator: joins tuples from two streams within a time window.

Two tuples join when their stimes differ by at most ``window`` and the
optional value predicate accepts them.  The output tuple carries the union of
both sides' attributes (prefixed to avoid clashes) and an ``stime`` equal to
the larger of the two input stimes, which keeps the output deterministic given
the input sequences.

Like the paper's Join, this operator *blocks* in the sense that it only emits
matches -- if one input stream is missing entirely it simply produces nothing
for it.  A Join fed tentative tuples produces tentative tuples.

Buffered state is pruned using the stable watermark: once boundaries on both
inputs pass ``stime + window``, a buffered tuple can no longer find new
partners and is discarded.  The ``state_size`` limit mirrors the "SJoin with a
100-tuple state size" used in the paper's experimental setup (Section 5.2).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from ...errors import OperatorError
from ..schema import ANY_SCHEMA, Schema
from ..tuples import StreamTuple
from .base import Operator

JoinPredicate = Callable[[Mapping[str, Any], Mapping[str, Any]], bool]


def _always_true(_left: Mapping[str, Any], _right: Mapping[str, Any]) -> bool:
    return True


class Join(Operator):
    """Windowed two-way stream join.

    Parameters
    ----------
    window:
        Maximum |stime difference| for two tuples to join, in stime units.
    predicate:
        Optional additional condition on the two tuples' attribute mappings.
    left_prefix / right_prefix:
        Prefixes applied to attribute names of each side in the output.
    state_size:
        Maximum number of tuples buffered per side; the oldest are evicted
        first.  ``None`` means unbounded (pruning by watermark only).
    """

    def __init__(
        self,
        name: str,
        window: float,
        predicate: JoinPredicate | None = None,
        left_prefix: str = "left_",
        right_prefix: str = "right_",
        state_size: int | None = None,
        output_schema: Schema = ANY_SCHEMA,
    ) -> None:
        super().__init__(name, arity=2, output_schema=output_schema)
        if window < 0:
            raise OperatorError(f"join window must be non-negative, got {window}")
        if state_size is not None and state_size <= 0:
            raise OperatorError(f"state_size must be positive or None, got {state_size}")
        self.window = window
        self.predicate = predicate or _always_true
        self.left_prefix = left_prefix
        self.right_prefix = right_prefix
        self.state_size = state_size
        #: Buffered tuples per port, in arrival order.
        self._buffers: list[list[StreamTuple]] = [[], []]

    # ------------------------------------------------------------------ data path
    def _process_data(self, port: int, item: StreamTuple) -> list[StreamTuple]:
        other_port = 1 - port
        out: list[StreamTuple] = []
        for partner in self._buffers[other_port]:
            if abs(partner.stime - item.stime) > self.window:
                continue
            left, right = (item, partner) if port == 0 else (partner, item)
            if not self.predicate(left.values, right.values):
                continue
            values: dict[str, Any] = {}
            for key, value in left.values.items():
                values[self.left_prefix + key] = value
            for key, value in right.values.items():
                values[self.right_prefix + key] = value
            tentative = item.is_tentative or partner.is_tentative
            out.append(self._emit(max(left.stime, right.stime), values, tentative=tentative))
        self._buffers[port].append(item)
        if self.state_size is not None and len(self._buffers[port]) > self.state_size:
            del self._buffers[port][0: len(self._buffers[port]) - self.state_size]
        return out

    def _on_watermark(self, previous: float, current: float) -> list[StreamTuple]:
        # A buffered tuple with stime + window < watermark can never match a
        # future tuple (future tuples have stime >= watermark).
        for port in (0, 1):
            self._buffers[port] = [
                t for t in self._buffers[port] if t.stime + self.window >= current
            ]
        return []

    # ------------------------------------------------------------------ checkpointing
    def _checkpoint_state(self) -> dict:
        return {"buffers": [list(buf) for buf in self._buffers]}

    def _restore_state(self, state: Mapping[str, Any]) -> None:
        buffers = state.get("buffers", [[], []])
        self._buffers = [list(buffers[0]), list(buffers[1])]

    @property
    def buffered_tuples(self) -> int:
        """Total number of tuples currently buffered on both sides."""
        return len(self._buffers[0]) + len(self._buffers[1])
