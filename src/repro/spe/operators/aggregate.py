"""Aggregate operator: windowed, optionally grouped aggregate functions.

An Aggregate computes one or more aggregate functions over windows of the
serialization attribute (``stime``), optionally grouping tuples by a set of
attributes first.  Window alignment is independent of the first tuple
processed so that replicas of the operator stay mutually consistent -- this is
the *independent-window-alignment* requirement of Section 2.1.

Window results are emitted when the operator's stable watermark (the minimum
boundary stime across its inputs) passes the window's end, which makes the
output deterministic given the input sequence.  A window's output is labelled
tentative when any tuple that contributed to it was tentative.

Accumulation is **pane-based** whenever the window spec admits an exact
gcd decomposition (:class:`~repro.spe.windows.PaneAssignment`) and every
spec uses an incremental builtin: each tuple updates exactly one
``(pane, group)`` cell of mergeable accumulators in O(1), and closing a
window merges its ``size/gcd`` pane partials -- O(groups x panes) state
instead of the legacy O(tuples x overlap) value buffers.  Custom aggregate
callables (and undecomposable window specs) fall back to whole-window
cells keyed by window index, which accumulate in arrival order and
reproduce the legacy buffered semantics byte for byte.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from ...errors import OperatorError
from ..accumulators import Accumulator, is_incremental, make_accumulator
from ..schema import ANY_SCHEMA, Schema
from ..tuples import StreamTuple
from ..windows import WindowSpec
from .base import Operator

#: Signature of a custom aggregate function: list of attribute values -> value.
AggregateFunction = Callable[[Sequence[Any]], Any]


def _count(values: Sequence[Any]) -> int:
    return len(values)


def _sum(values: Sequence[Any]) -> Any:
    return sum(values)


def _avg(values: Sequence[Any]) -> float:
    return sum(values) / len(values) if values else 0.0


def _min(values: Sequence[Any]) -> Any:
    return min(values)


def _max(values: Sequence[Any]) -> Any:
    return max(values)


BUILTIN_FUNCTIONS: dict[str, AggregateFunction] = {
    "count": _count,
    "sum": _sum,
    "avg": _avg,
    "min": _min,
    "max": _max,
}


class AggregateSpec:
    """One output attribute of an Aggregate: ``name = function(attribute)``."""

    def __init__(self, name: str, function: str | AggregateFunction, attribute: str | None = None):
        self.name = name
        self.attribute = attribute
        if callable(function):
            self.function: AggregateFunction = function
            self.function_name = getattr(function, "__name__", "custom")
            # A callable -- even one shadowing a builtin name -- has opaque
            # semantics, so it never qualifies for incremental accumulation.
            self.incremental = False
        else:
            try:
                self.function = BUILTIN_FUNCTIONS[function]
            except KeyError as exc:
                raise OperatorError(
                    f"unknown aggregate function {function!r}; "
                    f"expected one of {sorted(BUILTIN_FUNCTIONS)} or a callable"
                ) from exc
            self.function_name = function
            self.incremental = is_incremental(function)
        if self.function_name != "count" and attribute is None:
            raise OperatorError(f"aggregate {name!r} ({self.function_name}) needs an attribute")

    def extract(self, values: Mapping[str, Any]) -> Any:
        """Value this spec accumulates from one input tuple."""
        if self.attribute is None:
            return 1
        return values.get(self.attribute)

    def make_accumulator(self) -> Accumulator:
        """Fresh accumulator honouring this spec's function semantics."""
        if self.incremental:
            return make_accumulator(self.function_name, self.function)
        from ..accumulators import BufferingAccumulator

        return BufferingAccumulator(self.function)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AggregateSpec({self.name}={self.function_name}({self.attribute}))"


class _CellState:
    """Accumulated contents of one (pane-or-window index, group key) cell."""

    __slots__ = ("accumulators", "count", "has_tentative")

    def __init__(self, accumulators: list[Accumulator]) -> None:
        self.accumulators = accumulators
        self.count = 0
        self.has_tentative = False

    def add(self, extracted: Sequence[Any], tentative: bool) -> None:
        for accumulator, value in zip(self.accumulators, extracted):
            if value is not None:
                accumulator.add(value)
        self.count += 1
        self.has_tentative = self.has_tentative or tentative

    def snapshot(self) -> dict:
        return {
            "accumulators": [accumulator.snapshot() for accumulator in self.accumulators],
            "count": self.count,
            "has_tentative": self.has_tentative,
        }


class Aggregate(Operator):
    """Windowed grouped aggregate.

    Parameters
    ----------
    name:
        Operator name.
    window:
        The :class:`WindowSpec` delimiting computations.
    aggregates:
        The output attributes to compute, as :class:`AggregateSpec` objects or
        ``(name, function, attribute)`` tuples.
    group_by:
        Attribute names to group on.  Each closed window emits one output
        tuple per group observed in it.  **Grouped windows with no tuples
        emit nothing** even under ``emit_empty_windows`` (there is no group
        key to attach a zero row to); only the ungrouped form emits empties.
    emit_empty_windows:
        When True and ``group_by`` is empty, windows with no tuples still
        emit a single tuple with count-like aggregates at zero (useful for
        gap detection workloads).
    incremental:
        ``None`` (default) selects pane-based accumulation automatically
        whenever the window decomposes and every spec is an incremental
        builtin.  ``False`` forces the whole-window reference path (used by
        the window benchmark's naive-recompute comparison); ``True`` demands
        the pane path and raises when the spec cannot support it.
    """

    def __init__(
        self,
        name: str,
        window: WindowSpec,
        aggregates: Sequence[AggregateSpec | tuple],
        group_by: Sequence[str] = (),
        output_schema: Schema = ANY_SCHEMA,
        emit_empty_windows: bool = False,
        incremental: bool | None = None,
    ) -> None:
        super().__init__(name, arity=1, output_schema=output_schema)
        self.window = window
        self.specs = [a if isinstance(a, AggregateSpec) else AggregateSpec(*a) for a in aggregates]
        if not self.specs:
            raise OperatorError(f"aggregate {name!r} needs at least one aggregate spec")
        self.group_by = tuple(group_by)
        self.emit_empty_windows = emit_empty_windows
        supported = window.pane is not None and all(spec.incremental for spec in self.specs)
        if incremental is None:
            self._pane_mode = supported
        elif incremental and not supported:
            reasons = []
            if window.pane is None:
                reasons.append("the window spec has no exact pane decomposition")
            customs = [spec.name for spec in self.specs if not spec.incremental]
            if customs:
                reasons.append(f"spec(s) {customs} use custom callables")
            raise OperatorError(
                f"aggregate {name!r} cannot run incrementally: {'; '.join(reasons)}"
            )
        else:
            self._pane_mode = bool(incremental)
        #: (pane index, group key) -> cell in pane mode;
        #: (window index, group key) -> cell in whole-window mode.
        self._cells: dict[tuple[int, tuple], _CellState] = {}
        self._last_closed_watermark = float("-inf")

    # ------------------------------------------------------------------ data path
    def _group_key(self, values: Mapping[str, Any]) -> tuple:
        return tuple(values.get(attr) for attr in self.group_by)

    def _new_cell(self) -> _CellState:
        return _CellState([spec.make_accumulator() for spec in self.specs])

    def _process_data(self, port: int, item: StreamTuple) -> list[StreamTuple]:
        extracted = [spec.extract(item.values) for spec in self.specs]
        key = self._group_key(item.values)
        cells = self._cells
        if self._pane_mode:
            indices: Sequence[int] = (self.window.pane_index(item.stime),)
        else:
            indices = self.window.window_indices(item.stime)
        for index in indices:
            cell = cells.get((index, key))
            if cell is None:
                cell = self._new_cell()
                cells[(index, key)] = cell
            cell.add(extracted, item.is_tentative)
        return []

    def process_batch(self, port: int, items: Sequence[StreamTuple]) -> list[StreamTuple]:
        """Batch entry point with the per-tuple work hoisted into locals.

        In pane mode the inner loop touches exactly one cell per data tuple;
        the attribute extraction, group keying, and cell lookup run on local
        bindings so the hot path performs no repeated attribute loads.
        """
        self._check_port(port)
        out: list[StreamTuple] = []
        extend = out.extend
        cells = self._cells
        window = self.window
        pane_mode = self._pane_mode
        pane_index = window.pane_index if pane_mode else None
        window_indices = window.window_indices
        attributes = tuple(spec.attribute for spec in self.specs)
        group_attrs = self.group_by
        new_cell = self._new_cell
        cells_get = cells.get
        for item in items:
            if item.is_data:
                tentative = item.is_tentative
                if tentative:
                    self._seen_tentative_input = True
                values = item.values
                extracted = [
                    1 if attr is None else values.get(attr) for attr in attributes
                ]
                key = (
                    tuple(values.get(attr) for attr in group_attrs) if group_attrs else ()
                )
                if pane_mode:
                    cell_key = (pane_index(item.stime), key)
                    cell = cells_get(cell_key)
                    if cell is None:
                        cell = new_cell()
                        cells[cell_key] = cell
                    cell.add(extracted, tentative)
                else:
                    for index in window_indices(item.stime):
                        cell_key = (index, key)
                        cell = cells_get(cell_key)
                        if cell is None:
                            cell = new_cell()
                            cells[cell_key] = cell
                        cell.add(extracted, tentative)
            elif item.is_boundary:
                extend(self._accept_boundary(port, item))
            elif item.is_undo:
                extend(self.handle_undo(port, item))
            elif item.is_rec_done:
                extend(self.handle_rec_done(port, item))
            else:
                raise OperatorError(
                    f"operator {self.name!r} cannot process {item.tuple_type}"
                )
        return out

    # ------------------------------------------------------------------ window closing
    def _on_watermark(self, previous: float, current: float) -> list[StreamTuple]:
        if self._last_closed_watermark > float("-inf"):
            previous = max(previous, self._last_closed_watermark)
        window = self.window
        closed: set[int] = set()
        by_pane: dict[int, dict[tuple, _CellState]] | None = None
        if self._pane_mode:
            # Windows derived from live panes: closed by the new watermark and
            # not emitted at an earlier one (panes are shared across windows,
            # so emission cannot simply delete the cells that fed it).  The
            # candidate range spans the live panes; each candidate is kept
            # only if one of its panes is actually live, so a gap in the pane
            # population never surfaces as a spurious empty window.
            threshold = self._last_closed_watermark
            if self._cells:
                live_panes = {pane for pane, _key in self._cells}
                first = window.pane_windows(min(live_panes)).start
                last = window.pane_windows(max(live_panes)).stop
                window_end = window.window_end
                window_panes = window.window_panes
                for index in range(first, last):
                    end = window_end(index)
                    if end <= current and end > threshold and any(
                        pane in live_panes for pane in window_panes(index)
                    ):
                        closed.add(index)
        else:
            closed = {
                index for (index, _key) in self._cells if window.is_closed(index, current)
            }
        if self.emit_empty_windows:
            closed.update(window.windows_closed_by(previous, current))
        out: list[StreamTuple] = []
        if closed and self._pane_mode:
            # One pane -> cells index shared by every window emitted at this
            # watermark (consecutive closed windows overlap in most panes).
            by_pane = {}
            for (pane, key), cell in self._cells.items():
                by_pane.setdefault(pane, {})[key] = cell
        for index in sorted(closed):
            out.extend(self._emit_window(index, by_pane))
        self._last_closed_watermark = max(self._last_closed_watermark, current)
        if self._pane_mode:
            self._collect_dead_panes(current)
        return out

    def _collect_dead_panes(self, watermark: float) -> None:
        """Drop panes whose last containing window the watermark closed."""
        window = self.window
        per_slide = window.pane.per_slide
        is_closed = window.is_closed
        dead = [
            cell_key
            for cell_key in self._cells
            if is_closed(cell_key[0] // per_slide, watermark)
        ]
        for cell_key in dead:
            del self._cells[cell_key]

    def _empty_window_tuple(self, index: int, stime: float) -> StreamTuple:
        values = {
            spec.name: spec.function([]) if spec.function_name == "count" else None
            for spec in self.specs
        }
        values["window_start"] = self.window.window_start(index)
        return self._emit(stime, values, tentative=False)

    def _emit_window(
        self,
        index: int,
        by_pane: dict[int, dict[tuple, _CellState]] | None = None,
    ) -> list[StreamTuple]:
        if self._pane_mode:
            return self._emit_window_from_panes(index, by_pane)
        return self._emit_window_from_cells(index)

    def _emit_window_from_panes(
        self,
        index: int,
        by_pane: dict[int, dict[tuple, _CellState]] | None = None,
    ) -> list[StreamTuple]:
        window = self.window
        stime = window.window_end(index)
        if by_pane is None:
            by_pane = {}
            for (pane, key), cell in self._cells.items():
                by_pane.setdefault(pane, {})[key] = cell
        # Walking the pane range in ascending order keeps each group's cell
        # list in pane (stime) order without a per-window sort.
        groups: dict[tuple, list[_CellState]] = {}
        by_pane_get = by_pane.get
        for pane in window.window_panes(index):
            bucket = by_pane_get(pane)
            if bucket:
                for key, cell in bucket.items():
                    groups.setdefault(key, []).append(cell)
        out: list[StreamTuple] = []
        if not groups and self.emit_empty_windows and not self.group_by:
            out.append(self._empty_window_tuple(index, stime))
        for key in sorted(groups, key=repr):
            # Merge the pane partials in pane (stime) order into fresh
            # accumulators; the shared pane cells are never mutated.
            merged = [spec.make_accumulator() for spec in self.specs]
            tentative = False
            for cell in groups[key]:
                for accumulator, partial in zip(merged, cell.accumulators):
                    accumulator.merge(partial)
                tentative = tentative or cell.has_tentative
            values: dict[str, Any] = dict(zip(self.group_by, key))
            values["window_start"] = window.window_start(index)
            for spec, accumulator in zip(self.specs, merged):
                values[spec.name] = accumulator.result()
            out.append(self._emit(stime, values, tentative=tentative))
        return out

    def _emit_window_from_cells(self, index: int) -> list[StreamTuple]:
        window = self.window
        stime = window.window_end(index)
        cells = {key: cell for (win, key), cell in self._cells.items() if win == index}
        out: list[StreamTuple] = []
        if not cells and self.emit_empty_windows and not self.group_by:
            out.append(self._empty_window_tuple(index, stime))
        for key in sorted(cells, key=repr):
            cell = cells[key]
            values: dict[str, Any] = dict(zip(self.group_by, key))
            values["window_start"] = window.window_start(index)
            for spec, accumulator in zip(self.specs, cell.accumulators):
                values[spec.name] = accumulator.result()
            out.append(self._emit(stime, values, tentative=cell.has_tentative))
        # Whole-window cells are exclusive to this window: drop them now.
        for key in cells:
            del self._cells[(index, key)]
        return out

    # ------------------------------------------------------------------ checkpointing
    def _checkpoint_state(self) -> dict:
        return {
            "format": "pane" if self._pane_mode else "window",
            "cells": [
                {
                    "index": index,
                    "key": list(key),
                    "count": cell.count,
                    "has_tentative": cell.has_tentative,
                    "accumulators": [
                        accumulator.snapshot() for accumulator in cell.accumulators
                    ],
                }
                for (index, key), cell in self._cells.items()
            ],
            "last_closed_watermark": self._last_closed_watermark,
        }

    def _restore_state(self, state: Mapping[str, Any]) -> None:
        expected = "pane" if self._pane_mode else "window"
        recorded = state.get("format", expected)
        if recorded != expected:
            raise OperatorError(
                f"aggregate {self.name!r} runs in {expected!r} mode but the "
                f"checkpoint was taken in {recorded!r} mode"
            )
        cells: dict[tuple[int, tuple], _CellState] = {}
        for entry in state.get("cells", ()):
            cell = self._new_cell()
            for accumulator, snapshot in zip(cell.accumulators, entry["accumulators"]):
                accumulator.restore(snapshot)
            cell.count = int(entry["count"])
            cell.has_tentative = bool(entry["has_tentative"])
            cells[(int(entry["index"]), tuple(entry["key"]))] = cell
        self._cells = cells
        self._last_closed_watermark = float(state.get("last_closed_watermark", float("-inf")))

    # ------------------------------------------------------------------ introspection
    @property
    def pane_mode(self) -> bool:
        """True when accumulation is per (pane, group) cell."""
        return self._pane_mode

    @property
    def open_cell_count(self) -> int:
        """Number of (pane-or-window, group) cells currently held in memory.

        In pane mode this is the quantity bounded by O(groups x panes); the
        window benchmark asserts the bound through this counter.
        """
        return len(self._cells)

    @property
    def open_window_count(self) -> int:
        """Backward-compatible alias of :attr:`open_cell_count`."""
        return len(self._cells)
