"""Aggregate operator: windowed, optionally grouped aggregate functions.

An Aggregate computes one or more aggregate functions over windows of the
serialization attribute (``stime``), optionally grouping tuples by a set of
attributes first.  Window alignment is independent of the first tuple
processed so that replicas of the operator stay mutually consistent -- this is
the *independent-window-alignment* requirement of Section 2.1.

Window results are emitted when the operator's stable watermark (the minimum
boundary stime across its inputs) passes the window's end, which makes the
output deterministic given the input sequence.  A window's output is labelled
tentative when any tuple that contributed to it was tentative.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from ...errors import OperatorError
from ..schema import ANY_SCHEMA, Schema
from ..tuples import StreamTuple
from ..windows import WindowSpec
from .base import Operator

#: Signature of a custom aggregate function: list of attribute values -> value.
AggregateFunction = Callable[[Sequence[Any]], Any]


def _count(values: Sequence[Any]) -> int:
    return len(values)


def _sum(values: Sequence[Any]) -> Any:
    return sum(values)


def _avg(values: Sequence[Any]) -> float:
    return sum(values) / len(values) if values else 0.0


def _min(values: Sequence[Any]) -> Any:
    return min(values)


def _max(values: Sequence[Any]) -> Any:
    return max(values)


BUILTIN_FUNCTIONS: dict[str, AggregateFunction] = {
    "count": _count,
    "sum": _sum,
    "avg": _avg,
    "min": _min,
    "max": _max,
}


class AggregateSpec:
    """One output attribute of an Aggregate: ``name = function(attribute)``."""

    def __init__(self, name: str, function: str | AggregateFunction, attribute: str | None = None):
        self.name = name
        self.attribute = attribute
        if callable(function):
            self.function: AggregateFunction = function
            self.function_name = getattr(function, "__name__", "custom")
        else:
            try:
                self.function = BUILTIN_FUNCTIONS[function]
            except KeyError as exc:
                raise OperatorError(
                    f"unknown aggregate function {function!r}; "
                    f"expected one of {sorted(BUILTIN_FUNCTIONS)} or a callable"
                ) from exc
            self.function_name = function
        if self.function_name != "count" and attribute is None:
            raise OperatorError(f"aggregate {name!r} ({self.function_name}) needs an attribute")

    def extract(self, values: Mapping[str, Any]) -> Any:
        """Value this spec accumulates from one input tuple."""
        if self.attribute is None:
            return 1
        return values.get(self.attribute)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AggregateSpec({self.name}={self.function_name}({self.attribute}))"


class _WindowState:
    """Accumulated contents of one (window index, group key) cell."""

    __slots__ = ("values_per_spec", "count", "has_tentative")

    def __init__(self, n_specs: int) -> None:
        self.values_per_spec: list[list[Any]] = [[] for _ in range(n_specs)]
        self.count = 0
        self.has_tentative = False

    def add(self, extracted: Sequence[Any], tentative: bool) -> None:
        for bucket, value in zip(self.values_per_spec, extracted):
            if value is not None:
                bucket.append(value)
        self.count += 1
        self.has_tentative = self.has_tentative or tentative

    def snapshot(self) -> dict:
        return {
            "values_per_spec": [list(v) for v in self.values_per_spec],
            "count": self.count,
            "has_tentative": self.has_tentative,
        }

    @classmethod
    def from_snapshot(cls, data: Mapping[str, Any]) -> "_WindowState":
        state = cls(len(data["values_per_spec"]))
        state.values_per_spec = [list(v) for v in data["values_per_spec"]]
        state.count = int(data["count"])
        state.has_tentative = bool(data["has_tentative"])
        return state


class Aggregate(Operator):
    """Windowed grouped aggregate.

    Parameters
    ----------
    name:
        Operator name.
    window:
        The :class:`WindowSpec` delimiting computations.
    aggregates:
        The output attributes to compute, as :class:`AggregateSpec` objects or
        ``(name, function, attribute)`` tuples.
    group_by:
        Attribute names to group on.  Each closed window emits one output
        tuple per group observed in it.
    emit_empty_windows:
        When True, windows with no tuples still emit a single tuple with
        count-like aggregates at zero (useful for gap detection workloads).
    """

    def __init__(
        self,
        name: str,
        window: WindowSpec,
        aggregates: Sequence[AggregateSpec | tuple],
        group_by: Sequence[str] = (),
        output_schema: Schema = ANY_SCHEMA,
        emit_empty_windows: bool = False,
    ) -> None:
        super().__init__(name, arity=1, output_schema=output_schema)
        self.window = window
        self.specs = [a if isinstance(a, AggregateSpec) else AggregateSpec(*a) for a in aggregates]
        if not self.specs:
            raise OperatorError(f"aggregate {name!r} needs at least one aggregate spec")
        self.group_by = tuple(group_by)
        self.emit_empty_windows = emit_empty_windows
        #: (window_index, group_key) -> _WindowState
        self._windows: dict[tuple[int, tuple], _WindowState] = {}
        self._last_closed_watermark = float("-inf")

    # ------------------------------------------------------------------ data path
    def _group_key(self, values: Mapping[str, Any]) -> tuple:
        return tuple(values.get(attr) for attr in self.group_by)

    def _process_data(self, port: int, item: StreamTuple) -> list[StreamTuple]:
        extracted = [spec.extract(item.values) for spec in self.specs]
        key = self._group_key(item.values)
        for index in self.window.window_indices(item.stime):
            cell = self._windows.get((index, key))
            if cell is None:
                cell = _WindowState(len(self.specs))
                self._windows[(index, key)] = cell
            cell.add(extracted, item.is_tentative)
        return []

    def _on_watermark(self, previous: float, current: float) -> list[StreamTuple]:
        if self._last_closed_watermark > float("-inf"):
            previous = max(previous, self._last_closed_watermark)
        # Windows that held data and are now closed by the watermark.
        closed = {
            index for (index, _key) in self._windows if self.window.is_closed(index, current)
        }
        if self.emit_empty_windows:
            closed.update(self.window.windows_closed_by(previous, current))
        out: list[StreamTuple] = []
        for index in sorted(closed):
            out.extend(self._emit_window(index))
        self._last_closed_watermark = max(self._last_closed_watermark, current)
        return out

    def _emit_window(self, index: int) -> list[StreamTuple]:
        stime = self.window.window_end(index)
        cells = {
            key: cell for (win, key), cell in self._windows.items() if win == index
        }
        out: list[StreamTuple] = []
        if not cells and self.emit_empty_windows and not self.group_by:
            values = {spec.name: spec.function([]) if spec.function_name == "count" else None
                      for spec in self.specs}
            values["window_start"] = self.window.window_start(index)
            out.append(self._emit(stime, values, tentative=False))
        for key in sorted(cells, key=repr):
            cell = cells[key]
            values: dict[str, Any] = dict(zip(self.group_by, key))
            values["window_start"] = self.window.window_start(index)
            for spec, accumulated in zip(self.specs, cell.values_per_spec):
                values[spec.name] = spec.function(accumulated)
            out.append(self._emit(stime, values, tentative=cell.has_tentative))
        # Drop state for the emitted window.
        for key in cells:
            del self._windows[(index, key)]
        return out

    # ------------------------------------------------------------------ checkpointing
    def _checkpoint_state(self) -> dict:
        return {
            "windows": [
                {"index": win, "key": list(key), "state": cell.snapshot()}
                for (win, key), cell in self._windows.items()
            ],
            "last_closed_watermark": self._last_closed_watermark,
        }

    def _restore_state(self, state: Mapping[str, Any]) -> None:
        self._windows = {
            (int(entry["index"]), tuple(entry["key"])): _WindowState.from_snapshot(entry["state"])
            for entry in state.get("windows", ())
        }
        self._last_closed_watermark = float(state.get("last_closed_watermark", float("-inf")))

    @property
    def open_window_count(self) -> int:
        """Number of (window, group) cells currently held in memory."""
        return len(self._windows)
