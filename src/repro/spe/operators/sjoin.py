"""SJoin: a Join driven by the serialized order prepared by a preceding SUnion.

In Borealis the Join operator is "slightly modified to always process input
tuples in the order prepared by the preceding SUnion" (Section 3).  In this
reproduction the preceding SUnion merges its input streams into one serialized
stream, so SJoin consumes a *single* serialized input and joins each incoming
tuple against the tuples it recently received -- a self-join over the merged
stream, optionally restricted by a predicate (for example on a ``source``
attribute added by the query-diagram builder to distinguish the original
streams).

This matches the stateful-operator role SJoin plays in the paper's
experiments ("an SJoin with a 100-tuple state size", Section 5.2): it gives
the node non-trivial state to checkpoint and redo.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from ...errors import OperatorError
from ..schema import ANY_SCHEMA, Schema
from ..tuples import StreamTuple
from .base import Operator

SJoinPredicate = Callable[[Mapping[str, Any], Mapping[str, Any]], bool]


def _never(_old: Mapping[str, Any], _new: Mapping[str, Any]) -> bool:
    return False


class SJoin(Operator):
    """Join over a serialized stream with bounded state.

    Parameters
    ----------
    window:
        Maximum stime distance between two tuples for them to join.
    state_size:
        Maximum number of recent tuples retained as join candidates (the
        paper's experiments use 100).
    predicate:
        Condition on (older tuple attributes, newer tuple attributes).  The
        default never matches, which makes SJoin a pure pass-through with
        state -- exactly the role it plays in the availability experiments,
        where the output rate must equal the input rate.
    emit_matches:
        When False (default) SJoin forwards its input tuples and only keeps
        the join state; when True it emits one tuple per match instead.
    """

    def __init__(
        self,
        name: str,
        window: float = 1.0,
        state_size: int = 100,
        predicate: SJoinPredicate | None = None,
        emit_matches: bool = False,
        left_prefix: str = "old_",
        right_prefix: str = "new_",
        output_schema: Schema = ANY_SCHEMA,
    ) -> None:
        super().__init__(name, arity=1, output_schema=output_schema)
        if state_size <= 0:
            raise OperatorError(f"state_size must be positive, got {state_size}")
        if window < 0:
            raise OperatorError(f"window must be non-negative, got {window}")
        self.window = window
        self.state_size = state_size
        self.predicate = predicate or _never
        self.emit_matches = emit_matches
        self.left_prefix = left_prefix
        self.right_prefix = right_prefix
        self._state: list[StreamTuple] = []

    # ------------------------------------------------------------------ data path
    def _process_data(self, port: int, item: StreamTuple) -> list[StreamTuple]:
        out: list[StreamTuple] = []
        if self.emit_matches:
            for candidate in self._state:
                if abs(candidate.stime - item.stime) > self.window:
                    continue
                if not self.predicate(candidate.values, item.values):
                    continue
                values: dict[str, Any] = {}
                for key, value in candidate.values.items():
                    values[self.left_prefix + key] = value
                for key, value in item.values.items():
                    values[self.right_prefix + key] = value
                tentative = candidate.is_tentative or item.is_tentative
                out.append(self._emit(item.stime, values, tentative=tentative))
        else:
            out.append(self._forward(item, tentative=item.is_tentative))
        self._state.append(item)
        if len(self._state) > self.state_size:
            del self._state[0: len(self._state) - self.state_size]
        return out

    def process_batch(self, port: int, items) -> list[StreamTuple]:
        """Bulk fast path for the pass-through configuration (no match output).

        One relabeled output tuple (sharing the input payload) and one state
        append per data tuple; the match-emitting configuration falls back to
        the generic per-tuple path.
        """
        if self.emit_matches:
            return super().process_batch(port, items)
        self._check_port(port)
        out: list[StreamTuple] = []
        append = out.append
        writer_data = self.writer.data
        state = self._state
        state_size = self.state_size
        for item in items:
            if item.is_data:
                if item.is_tentative:
                    self._seen_tentative_input = True
                    append(writer_data(item.stime, item.values, False))
                else:
                    append(writer_data(item.stime, item.values, True))
                state.append(item)
                if len(state) > state_size:
                    del state[0]
            else:
                out.extend(self.process(port, item))
                state = self._state  # _on_watermark rebinds the state list
        return out

    def _on_watermark(self, previous: float, current: float) -> list[StreamTuple]:
        self._state = [t for t in self._state if t.stime + self.window >= current]
        return []

    # ------------------------------------------------------------------ checkpointing
    def _checkpoint_state(self) -> dict:
        return {"state": list(self._state)}

    def _restore_state(self, state: Mapping[str, Any]) -> None:
        self._state = list(state.get("state", ()))

    @property
    def buffered_tuples(self) -> int:
        return len(self._state)
