"""Borealis operators extended for DPC."""

from .base import Operator, StatelessOperator, chain_process
from .filter import Filter
from .map import Map
from .union import Union
from .aggregate import Aggregate, AggregateSpec, BUILTIN_FUNCTIONS
from .join import Join
from .sunion import SUnion, bucket_index
from .sjoin import SJoin
from .soutput import SOutput

__all__ = [
    "Operator",
    "StatelessOperator",
    "chain_process",
    "Filter",
    "Map",
    "Union",
    "Aggregate",
    "AggregateSpec",
    "BUILTIN_FUNCTIONS",
    "Join",
    "SUnion",
    "bucket_index",
    "SJoin",
    "SOutput",
]
