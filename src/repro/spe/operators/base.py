"""Operator base class.

Every Borealis operator in this reproduction follows the contract DPC needs
(Section 3, "Query diagram extensions"):

* **Determinism** -- outputs depend only on the sequence of input tuples, never
  on arrival times; output ``stime`` values are computed from input stimes.
* **Tentative labelling** -- an output tuple is tentative whenever any input
  tuple that contributed to it was tentative.
* **Boundary processing** -- operators consume BOUNDARY tuples, advance their
  stable watermark (the minimum boundary stime across input ports), emit any
  results that the watermark closes, and forward their own boundary.
* **Checkpoint / restore** -- operators can snapshot their mutable state and
  later reinitialize from the snapshot (used by checkpoint/redo
  reconciliation).
* **Undo** -- when per-operator granularity is enabled (Section 8.2), an
  operator receiving an UNDO tuple restores its own last checkpoint and
  forwards the undo.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from ...errors import OperatorError
from ..checkpoint import OperatorCheckpoint
from ..schema import ANY_SCHEMA, Schema
from ..streams import StreamWriter
from ..tuples import StreamTuple


class Operator:
    """Base class for all operators.

    Parameters
    ----------
    name:
        Unique name within a query diagram.
    arity:
        Number of input ports.
    output_schema:
        Schema of the output stream (informational; validation is optional).
    """

    def __init__(self, name: str, arity: int = 1, output_schema: Schema = ANY_SCHEMA) -> None:
        if arity < 1:
            raise OperatorError(f"operator {name!r} must have at least one input port")
        self.name = name
        self.arity = arity
        self.output_schema = output_schema
        self.writer = StreamWriter(stream_name=f"{name}.out")
        #: Last boundary stime seen on each input port (the b_i of Section 4.2.1).
        self._port_boundaries: list[float] = [float("-inf")] * arity
        #: Watermark already propagated downstream as our own boundary.
        self._emitted_watermark: float = float("-inf")
        #: Checkpoint taken by :meth:`checkpoint` (used for per-operator undo).
        self._own_checkpoint: OperatorCheckpoint | None = None
        #: True while inputs seen since the last stable watermark were tentative.
        self._seen_tentative_input = False

    # ------------------------------------------------------------------ plumbing
    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.arity:
            raise OperatorError(
                f"operator {self.name!r} has {self.arity} ports; got port {port}"
            )

    @property
    def watermark(self) -> float:
        """Minimum boundary stime across all input ports (Equation 1)."""
        return min(self._port_boundaries)

    # ------------------------------------------------------------------ live rewiring
    def add_port(self) -> int:
        """Grow the operator by one input port; returns the new port index.

        Elastic deployments widen a fan-in operator when a shard fragment is
        attached to a running dataflow.  The fresh port starts with no
        boundary seen, so the watermark holds until the new input produces
        its first punctuation -- exactly the startup behaviour of a port that
        existed from the beginning.
        """
        port = self.arity
        self.arity += 1
        self._port_boundaries.append(float("-inf"))
        return port

    def remove_port(self, port: int) -> None:
        """Drop one input port (scale-in decommissions the fragment feeding it).

        Ports above ``port`` shift down by one; the watermark recomputes over
        the survivors, so a retired port that was holding the minimum back no
        longer gates emission.
        """
        self._check_port(port)
        if self.arity <= 1:
            raise OperatorError(
                f"operator {self.name!r} cannot drop its only input port"
            )
        del self._port_boundaries[port]
        self.arity -= 1

    # ------------------------------------------------------------------ public API
    def process(self, port: int, item: StreamTuple) -> list[StreamTuple]:
        """Process one input tuple and return the output tuples it triggers."""
        self._check_port(port)
        # Dispatch on the predicate flags precomputed at tuple construction;
        # most frequent kind (data) first.
        if item.is_data:
            if item.is_tentative:
                self._seen_tentative_input = True
            return self._process_data(port, item)
        if item.is_boundary:
            return self._accept_boundary(port, item)
        if item.is_undo:
            return self.handle_undo(port, item)
        if item.is_rec_done:
            return self.handle_rec_done(port, item)
        raise OperatorError(f"operator {self.name!r} cannot process {item.tuple_type}")

    def process_batch(self, port: int, items: Iterable[StreamTuple]) -> list[StreamTuple]:
        """Process a sequence of tuples from one port, concatenating outputs.

        This is the engine's entry point into every operator (the engine is
        batch-at-a-time); operators with a cheaper whole-batch strategy
        (Filter, Map, SUnion, SJoin, SOutput) override it.  The base version
        hoists the per-tuple dispatch out of :meth:`process`.
        """
        self._check_port(port)
        out: list[StreamTuple] = []
        extend = out.extend
        process_data = self._process_data
        for item in items:
            if item.is_data:
                if item.is_tentative:
                    self._seen_tentative_input = True
                extend(process_data(port, item))
            elif item.is_boundary:
                extend(self._accept_boundary(port, item))
            elif item.is_undo:
                extend(self.handle_undo(port, item))
            elif item.is_rec_done:
                extend(self.handle_rec_done(port, item))
            else:
                raise OperatorError(
                    f"operator {self.name!r} cannot process {item.tuple_type}"
                )
        return out

    # ------------------------------------------------------------------ boundaries
    def _accept_boundary(self, port: int, item: StreamTuple) -> list[StreamTuple]:
        previous = self.watermark
        if item.stime > self._port_boundaries[port]:
            self._port_boundaries[port] = item.stime
        new_watermark = self.watermark
        out: list[StreamTuple] = []
        if new_watermark > previous:
            out.extend(self._on_watermark(previous, new_watermark))
        bound = self._boundary_to_emit(new_watermark)
        if bound > self._emitted_watermark and bound > float("-inf"):
            self._emitted_watermark = bound
            out.append(self.writer.boundary(bound))
        return out

    def _on_watermark(self, previous: float, current: float) -> list[StreamTuple]:
        """Hook for windowed operators: emit results closed by the new watermark."""
        return []

    def _boundary_to_emit(self, watermark: float) -> float:
        """Hook: the boundary stime to forward for ``watermark``.

        Operators that can withhold data the watermark already covers (an
        SUnion holding buckets during failure handling) override this to cap
        the promise they make downstream.
        """
        return watermark

    # ------------------------------------------------------------------ undo / rec_done
    def handle_undo(self, port: int, item: StreamTuple) -> list[StreamTuple]:
        """Per-operator undo: restore own checkpoint and forward the undo.

        The undo forwarded downstream revokes everything this operator emitted
        after its checkpointed position.
        """
        undo_from = self.writer.next_id - 1
        if self._own_checkpoint is not None:
            self.restore(self._own_checkpoint)
            undo_from = self.writer.next_id - 1
        return [self.writer.undo(item.stime, undo_from)]

    def handle_rec_done(self, port: int, item: StreamTuple) -> list[StreamTuple]:
        """Forward the end-of-reconciliation marker."""
        self._seen_tentative_input = False
        return [self.writer.rec_done(item.stime)]

    # ------------------------------------------------------------------ data processing
    def _process_data(self, port: int, item: StreamTuple) -> list[StreamTuple]:
        raise NotImplementedError

    def _emit(self, stime: float, values: Mapping[str, Any], tentative: bool) -> StreamTuple:
        """Create an output data tuple with the correct stability label.

        ``values`` is copied; use :meth:`_forward` when relabeling the payload
        of an existing tuple (already frozen by convention, so no copy is
        needed).
        """
        if tentative:
            return self.writer.tentative(stime, values)
        return self.writer.insertion(stime, values)

    def _forward(self, item: StreamTuple, tentative: bool) -> StreamTuple:
        """Re-emit ``item``'s payload on this operator's output, allocation-free.

        The output tuple gets a fresh stream-local id and the requested
        stability label but *shares* the input's payload mapping.
        """
        return self.writer.data(item.stime, item.values, stable=not tentative)

    # ------------------------------------------------------------------ checkpointing
    def checkpoint_state(self) -> dict:
        """All mutable state of this operator, as plain data.

        Side-effect free, unlike :meth:`checkpoint`: it does not install a
        per-operator undo point, so periodic recovery capture (the
        ``repro.statexfer`` layer) can read state without perturbing the
        reconciliation machinery.
        """
        return {
            "writer": self.writer.snapshot(),
            "port_boundaries": list(self._port_boundaries),
            "emitted_watermark": self._emitted_watermark,
            "seen_tentative_input": self._seen_tentative_input,
            "custom": self._checkpoint_state(),
        }

    def checkpoint(self) -> OperatorCheckpoint:
        """Snapshot all mutable state of this operator."""
        snapshot = OperatorCheckpoint.capture(self.name, self.checkpoint_state())
        self._own_checkpoint = snapshot
        return snapshot

    def restore(self, snapshot: OperatorCheckpoint) -> None:
        """Reinitialize this operator from ``snapshot``."""
        if snapshot.operator_name != self.name:
            raise OperatorError(
                f"checkpoint for {snapshot.operator_name!r} applied to {self.name!r}"
            )
        state = snapshot.state_copy()
        self.writer.restore(state["writer"])
        self._port_boundaries = list(state["port_boundaries"])
        self._emitted_watermark = float(state["emitted_watermark"])
        self._seen_tentative_input = bool(state["seen_tentative_input"])
        self._restore_state(state["custom"])

    def _checkpoint_state(self) -> dict:
        """Operator-specific mutable state; override in stateful operators."""
        return {}

    def _restore_state(self, state: Mapping[str, Any]) -> None:
        """Restore operator-specific state; override in stateful operators."""

    # ------------------------------------------------------------------ introspection
    @property
    def is_stateful(self) -> bool:
        """True when the operator keeps window or join state between tuples."""
        return bool(self._checkpoint_state())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} arity={self.arity}>"


class StatelessOperator(Operator):
    """Convenience base for single-input operators with no window state."""

    def __init__(self, name: str, output_schema: Schema = ANY_SCHEMA) -> None:
        super().__init__(name, arity=1, output_schema=output_schema)


def chain_process(operators: Sequence[Operator], items: Iterable[StreamTuple]) -> list[StreamTuple]:
    """Push ``items`` through a linear chain of single-input operators.

    Utility used by tests and by simple examples; the full engine lives in
    :mod:`repro.spe.engine`.
    """
    current = list(items)
    for op in operators:
        nxt: list[StreamTuple] = []
        for item in current:
            nxt.extend(op.process(0, item))
        current = nxt
    return current
