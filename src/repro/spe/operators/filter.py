"""Filter operator: tests each input tuple against a predicate."""

from __future__ import annotations

from typing import Callable, Mapping, Any

from ..schema import ANY_SCHEMA, Schema
from ..tuples import StreamTuple
from .base import StatelessOperator

Predicate = Callable[[Mapping[str, Any]], bool]


class Filter(StatelessOperator):
    """Pass through the tuples whose attribute values satisfy ``predicate``.

    The predicate receives the tuple's attribute mapping and must be a pure
    function of it (no time, no randomness) so the operator stays
    deterministic.
    """

    def __init__(self, name: str, predicate: Predicate, output_schema: Schema = ANY_SCHEMA) -> None:
        super().__init__(name, output_schema=output_schema)
        self.predicate = predicate

    def _process_data(self, port: int, item: StreamTuple) -> list[StreamTuple]:
        if not self.predicate(item.values):
            return []
        return [self._emit(item.stime, item.values, tentative=item.is_tentative)]
