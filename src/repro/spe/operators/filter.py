"""Filter operator: tests each input tuple against a predicate."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from ..schema import ANY_SCHEMA, Schema
from ..tuples import StreamTuple
from .base import StatelessOperator

Predicate = Callable[[Mapping[str, Any]], bool]


class Filter(StatelessOperator):
    """Pass through the tuples whose attribute values satisfy ``predicate``.

    The predicate receives the tuple's attribute mapping and must be a pure
    function of it (no time, no randomness) so the operator stays
    deterministic.

    Filtering neither reorders nor rewrites tuples, so matching tuples pass
    through *unchanged* (same id, stime, values, and stability label) instead
    of being reallocated with filter-local ids.  Downstream operators
    therefore keep seeing the upstream id space -- which is also why
    :meth:`handle_undo` forwards UNDO tuples verbatim: their ``undo_from_id``
    already names a position in exactly that space.  This keeps the
    per-tuple cost of the sharded deployments' ingress filters (which test
    every tuple of the split's full output stream on every shard) to one
    predicate call.
    """

    def __init__(self, name: str, predicate: Predicate, output_schema: Schema = ANY_SCHEMA) -> None:
        super().__init__(name, output_schema=output_schema)
        self.predicate = predicate

    def _process_data(self, port: int, item: StreamTuple) -> list[StreamTuple]:
        if not self.predicate(item.values):
            return []
        return [item]

    def process_batch(self, port: int, items: Iterable[StreamTuple]) -> list[StreamTuple]:
        """Bulk fast path: one predicate call per data tuple, no dispatch cost."""
        self._check_port(port)
        predicate = self.predicate
        out: list[StreamTuple] = []
        append = out.append
        for item in items:
            if item.is_data:
                if item.is_tentative:
                    self._seen_tentative_input = True
                if predicate(item.values):
                    append(item)
            else:
                out.extend(self.process(port, item))
        return out

    def handle_undo(self, port: int, item: StreamTuple) -> list[StreamTuple]:
        """Forward the undo verbatim: it names a position in the pass-through id space."""
        return [item]

    def handle_rec_done(self, port: int, item: StreamTuple) -> list[StreamTuple]:
        self._seen_tentative_input = False
        return [item]
