"""Map operator: transforms each input tuple into a single output tuple."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from ..schema import ANY_SCHEMA, Schema
from ..tuples import StreamTuple
from .base import StatelessOperator

Transform = Callable[[Mapping[str, Any]], Mapping[str, Any]]


class Map(StatelessOperator):
    """Apply ``transform`` to each tuple's attributes.

    ``transform`` must be a pure function of the input attributes; the output
    tuple keeps the input's ``stime`` so downstream window boundaries stay
    deterministic.  The transform's result is copied exactly once into the
    output tuple (so a transform may safely return a mapping it reuses).
    """

    def __init__(self, name: str, transform: Transform, output_schema: Schema = ANY_SCHEMA) -> None:
        super().__init__(name, output_schema=output_schema)
        self.transform = transform

    def _process_data(self, port: int, item: StreamTuple) -> list[StreamTuple]:
        values = dict(self.transform(item.values))
        return [self.writer.data(item.stime, values, stable=not item.is_tentative)]

    def process_batch(self, port: int, items: Iterable[StreamTuple]) -> list[StreamTuple]:
        """Bulk fast path: one transform call and one tuple per data tuple."""
        self._check_port(port)
        transform = self.transform
        writer_data = self.writer.data
        out: list[StreamTuple] = []
        append = out.append
        for item in items:
            if item.is_data:
                if item.is_tentative:
                    self._seen_tentative_input = True
                    append(writer_data(item.stime, dict(transform(item.values)), False))
                else:
                    append(writer_data(item.stime, dict(transform(item.values)), True))
            else:
                out.extend(self.process(port, item))
        return out
