"""Map operator: transforms each input tuple into a single output tuple."""

from __future__ import annotations

from typing import Any, Callable, Mapping

from ..schema import ANY_SCHEMA, Schema
from ..tuples import StreamTuple
from .base import StatelessOperator

Transform = Callable[[Mapping[str, Any]], Mapping[str, Any]]


class Map(StatelessOperator):
    """Apply ``transform`` to each tuple's attributes.

    ``transform`` must be a pure function of the input attributes; the output
    tuple keeps the input's ``stime`` so downstream window boundaries stay
    deterministic.
    """

    def __init__(self, name: str, transform: Transform, output_schema: Schema = ANY_SCHEMA) -> None:
        super().__init__(name, output_schema=output_schema)
        self.transform = transform

    def _process_data(self, port: int, item: StreamTuple) -> list[StreamTuple]:
        values = dict(self.transform(item.values))
        return [self._emit(item.stime, values, tentative=item.is_tentative)]
