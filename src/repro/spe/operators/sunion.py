"""SUnion: the data-serializing operator at the heart of DPC.

SUnion (Section 4.2) takes one or more input streams and orders all their
tuples into a single deterministic sequence so that every replica of the
downstream operators processes exactly the same input in the same order.  It
works on *buckets*: disjoint intervals of ``tuple_stime`` of a fixed size.  A
bucket is *stable* once boundary tuples with sufficiently high stimes have
been received on every input stream (Equation 1); at that point its contents
can be sorted (by ``(stime, port, tuple_id)``) and emitted.

This module contains the deterministic serializer used *inside* query
diagrams.  The DPC-specific behaviour of SUnions placed on a node's input
streams -- failure detection, the availability/consistency delay trade-off,
input buffering for reconciliation -- lives in
:class:`repro.core.input_sunion.InputSUnion`, which builds on this class.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from ...errors import OperatorError
from ..schema import ANY_SCHEMA, Schema
from ..tuples import StreamTuple
from .base import Operator


def bucket_index(stime: float, bucket_size: float) -> int:
    """Index of the bucket covering ``stime`` (buckets are [k*size, (k+1)*size))."""
    return int(math.floor(stime / bucket_size))


class SUnion(Operator):
    """Deterministic, bucket-based serializing union.

    Parameters
    ----------
    arity:
        Number of input streams to merge.
    bucket_size:
        Width, in stime units, of the buckets used to batch the
        availability/consistency decision (Section 4.2.1).
    sort_key:
        Optional override of the intra-bucket order.  The default orders by
        ``(stime, port, tuple_id)`` which is deterministic for any interleaved
        arrival order of the same per-stream sequences.
    """

    def __init__(
        self,
        name: str,
        arity: int = 1,
        bucket_size: float = 0.1,
        output_schema: Schema = ANY_SCHEMA,
    ) -> None:
        super().__init__(name, arity=arity, output_schema=output_schema)
        if bucket_size <= 0:
            raise OperatorError(f"bucket_size must be positive, got {bucket_size}")
        self.bucket_size = bucket_size
        #: bucket index -> list of (port, tuple) awaiting stability.
        self._buckets: dict[int, list[tuple[int, StreamTuple]]] = {}
        #: Highest bucket boundary (stime) already emitted.
        self._emitted_through = float("-inf")
        #: Optional clock (set by the processing node) used to record when a
        #: bucket first received data; drives the delay policies of Section 6.
        self.arrival_clock = None
        #: While True, buckets are never emitted by watermark advances -- only
        #: through the explicit force_emit_* calls.  The processing node sets
        #: this while it is handling a failure so that the availability /
        #: consistency trade-off is governed entirely by the delay policy.
        self.hold_buckets = False
        #: bucket index -> simulation time of the first tuple buffered for it.
        self._bucket_first_arrival: dict[int, float] = {}
        #: Data tuples dropped because their bucket was already emitted (late
        #: arrivals, e.g. source replays handled instead by reconciliation).
        self.late_drops = 0

    # ------------------------------------------------------------------ buffering
    def _process_data(self, port: int, item: StreamTuple) -> list[StreamTuple]:
        index = bucket_index(item.stime, self.bucket_size)
        if (index + 1) * self.bucket_size <= self._emitted_through:
            # The bucket covering this stime was already emitted; the tuple is
            # late (typically a replay after a failure) and will reach the
            # downstream state through reconciliation instead.
            self.late_drops += 1
            return []
        if index not in self._buckets and self.arrival_clock is not None:
            self._bucket_first_arrival[index] = float(self.arrival_clock())
        self._buckets.setdefault(index, []).append((port, item))
        return []

    def process_batch(self, port: int, items) -> list[StreamTuple]:
        """Bucket a whole batch with the per-tuple float math hoisted.

        Identical semantics to pushing each tuple through :meth:`process`
        (same ``floor(stime / bucket_size)`` arithmetic, so buckets cannot
        shift), but the attribute lookups, the late-drop comparison bound,
        and the bucket-dict handling are resolved once per batch instead of
        once per tuple.  Control tuples fall back to the single-tuple path,
        after which the hoisted locals are refreshed (a boundary can emit
        buckets and advance ``_emitted_through``).
        """
        self._check_port(port)
        out: list[StreamTuple] = []
        buckets = self._buckets
        bucket_size = self.bucket_size
        clock = self.arrival_clock
        floor = math.floor
        emitted_through = self._emitted_through
        for item in items:
            if item.is_data:
                if item.is_tentative:
                    self._seen_tentative_input = True
                index = int(floor(item.stime / bucket_size))
                if (index + 1) * bucket_size <= emitted_through:
                    self.late_drops += 1
                    continue
                entries = buckets.get(index)
                if entries is not None:
                    entries.append((port, item))
                else:
                    if clock is not None:
                        self._bucket_first_arrival[index] = float(clock())
                    buckets[index] = [(port, item)]
            else:
                out.extend(self.process(port, item))
                # The fallback can emit buckets (boundary) or restore a
                # checkpoint (undo), which *rebinds* self._buckets — refresh
                # every hoisted local before touching another data tuple.
                buckets = self._buckets
                emitted_through = self._emitted_through
        return out

    def _on_watermark(self, previous: float, current: float) -> list[StreamTuple]:
        if self.hold_buckets:
            return []
        return self._emit_stable_through(current)

    def _boundary_to_emit(self, watermark: float) -> float:
        """Never let forwarded boundaries run ahead of held data.

        A boundary emitted downstream promises that the stream is stable up
        to its stime.  While :attr:`hold_buckets` is set, buckets the
        watermark has already stabilized stay buffered, so forwarding the
        full watermark would break that promise: a downstream consumer (in
        particular the redo buffer it keeps for reconciliation) would see
        "stable through t" *before* the held data for t arrives, and a later
        replay of that buffer would stabilize and emit buckets before their
        data is pushed, silently late-dropping it.  The boundary forwarded
        while holding is therefore capped at the lower edge of the oldest
        held bucket; once the hold is released and the data flows, the next
        watermark advance emits the catch-up boundary.
        """
        if self.hold_buckets and self._buckets:
            return min(watermark, min(self._buckets) * self.bucket_size)
        return watermark

    def remove_port(self, port: int) -> None:
        """Drop one input port and renumber buffered entries to match.

        Entries buffered from higher-numbered ports shift down with their
        port (the intra-bucket sort orders by ``(stime, port, tuple_id)``, so
        the renumbering must track the live wiring); entries from the removed
        port itself -- already-cut data still awaiting stability -- keep
        their original index, preserving a deterministic order that every
        replica reproduces because each performs the identical removal.
        """
        super().remove_port(port)
        for index, entries in self._buckets.items():
            self._buckets[index] = [
                (p - 1 if p > port else p, item) for p, item in entries
            ]

    def release_held_buckets(self) -> list[StreamTuple]:
        """Emit every bucket the current watermark already stabilized.

        Called by the node when it leaves failure handling without having
        processed anything tentative (the failure was masked): the buckets
        buffered while :attr:`hold_buckets` was set can be emitted stably.
        """
        return self._emit_stable_through(self.watermark)

    # ------------------------------------------------------------------ emission
    def _bucket_is_complete(self, index: int, watermark: float) -> bool:
        """A bucket is stable once the watermark passes its upper edge."""
        return watermark >= (index + 1) * self.bucket_size

    def _serialize_bucket(self, entries: list[tuple[int, StreamTuple]]) -> list[StreamTuple]:
        ordered = sorted(entries, key=lambda e: (e[1].stime, e[0], e[1].tuple_id))
        writer_data = self.writer.data
        return [
            writer_data(item.stime, item.values, stable=not item.is_tentative)
            for _port, item in ordered
        ]

    def _emit_stable_through(self, watermark: float) -> list[StreamTuple]:
        """Emit, in order, every buffered bucket the watermark has stabilized."""
        ready = sorted(
            index for index in self._buckets if self._bucket_is_complete(index, watermark)
        )
        out: list[StreamTuple] = []
        for index in ready:
            out.extend(self._serialize_bucket(self._buckets.pop(index)))
            self._bucket_first_arrival.pop(index, None)
            self._emitted_through = max(self._emitted_through, (index + 1) * self.bucket_size)
        return out

    def force_emit_pending(self) -> list[StreamTuple]:
        """Emit every buffered bucket regardless of stability, labelled tentative.

        Used when a failure makes it impossible to ever stabilize the buckets
        and the availability bound requires processing what is available.
        """
        return self._force_emit(sorted(self._buckets))

    def force_emit_held_longer_than(self, now: float, min_hold: float) -> list[StreamTuple]:
        """Tentatively emit the buckets buffered for at least ``min_hold`` seconds.

        This is the knob the delay policies of Section 6 turn: under
        *Process*, ``min_hold`` is the small tentative-bucket wait; under
        *Delay*, it is (a fraction of) the node's incremental latency budget
        ``D``.  Requires :attr:`arrival_clock` to have been set.
        """
        ready = sorted(
            index
            for index in self._buckets
            if now - self._bucket_first_arrival.get(index, now) >= min_hold
        )
        return self._force_emit(ready)

    def _force_emit(self, indices: list[int]) -> list[StreamTuple]:
        out: list[StreamTuple] = []
        for index in indices:
            for _port, item in sorted(
                self._buckets.pop(index), key=lambda e: (e[1].stime, e[0], e[1].tuple_id)
            ):
                out.append(self.writer.data(item.stime, item.values, stable=False))
            self._bucket_first_arrival.pop(index, None)
            self._emitted_through = max(self._emitted_through, (index + 1) * self.bucket_size)
        return out

    def drop_tentative(self) -> int:
        """Remove buffered tentative tuples (an UNDO arrived on the input).

        Returns the number of tuples dropped.  The stable versions arrive as
        corrections and are handled by reconciliation.
        """
        dropped = 0
        for index in list(self._buckets):
            kept = [(port, item) for port, item in self._buckets[index] if not item.is_tentative]
            dropped += len(self._buckets[index]) - len(kept)
            if kept:
                self._buckets[index] = kept
            else:
                del self._buckets[index]
                self._bucket_first_arrival.pop(index, None)
        return dropped

    # ------------------------------------------------------------------ introspection
    @property
    def pending_tuples(self) -> int:
        """Number of buffered data tuples not yet emitted."""
        return sum(len(entries) for entries in self._buckets.values())

    @property
    def pending_buckets(self) -> list[int]:
        return sorted(self._buckets)

    # ------------------------------------------------------------------ checkpointing
    def _checkpoint_state(self) -> dict:
        return {
            "buckets": {
                str(index): [(port, item) for port, item in entries]
                for index, entries in self._buckets.items()
            },
            "first_arrival": {str(index): t for index, t in self._bucket_first_arrival.items()},
            "emitted_through": self._emitted_through,
            "bucket_size": self.bucket_size,
        }

    def _restore_state(self, state: Mapping[str, Any]) -> None:
        self._buckets = {
            int(index): [(int(port), item) for port, item in entries]
            for index, entries in state.get("buckets", {}).items()
        }
        self._bucket_first_arrival = {
            int(index): float(t) for index, t in state.get("first_arrival", {}).items()
        }
        self._emitted_through = float(state.get("emitted_through", float("-inf")))
