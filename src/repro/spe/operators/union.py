"""Union operator: merges two or more input streams into one output stream.

The plain Union is order-sensitive (it emits tuples in arrival order), which
is exactly why DPC replaces it with :class:`~repro.spe.operators.sunion.SUnion`
in replicated deployments.  It is kept here as the non-fault-tolerant baseline
used by the overhead experiments (Tables IV and V compare SUnion + SOutput
against a standard Union with no boundary tuples).
"""

from __future__ import annotations

from ..schema import ANY_SCHEMA, Schema
from ..tuples import StreamTuple
from .base import Operator


class Union(Operator):
    """Merge tuples from ``arity`` input streams in arrival order.

    A Union is non-blocking: it keeps producing output when some of its input
    streams are missing, which is why the paper labels its output tentative in
    that situation.  The ``inputs_missing`` flag models that condition: while
    any input is known-missing, every output tuple is labelled tentative.
    """

    def __init__(self, name: str, arity: int = 2, output_schema: Schema = ANY_SCHEMA) -> None:
        super().__init__(name, arity=arity, output_schema=output_schema)
        self._missing_ports: set[int] = set()

    # ------------------------------------------------------------------ failure marking
    def mark_port_missing(self, port: int) -> None:
        """Declare that input ``port`` is currently unavailable."""
        self._check_port(port)
        self._missing_ports.add(port)

    def mark_port_available(self, port: int) -> None:
        """Declare that input ``port`` is available again."""
        self._check_port(port)
        self._missing_ports.discard(port)

    @property
    def has_missing_inputs(self) -> bool:
        return bool(self._missing_ports)

    # ------------------------------------------------------------------ processing
    def _process_data(self, port: int, item: StreamTuple) -> list[StreamTuple]:
        tentative = item.is_tentative or self.has_missing_inputs
        return [self._forward(item, tentative=tentative)]

    def _checkpoint_state(self) -> dict:
        return {"missing_ports": sorted(self._missing_ports)}

    def _restore_state(self, state) -> None:
        self._missing_ports = set(state.get("missing_ports", ()))
