"""Checkpoint containers.

DPC reconciles node state with *checkpoint/redo* (Section 4.4.1): when a node
enters UP_FAILURE it snapshots the state of its query-diagram fragment before
processing any tentative tuple; during STABILIZATION it restores that snapshot
and reprocesses the stable input buffered since.  The containers here are thin
but give checkpoints an identity (id + creation time) and verify on restore
that they are applied to the diagram they came from.

Operator state is opaque plain data supplied by ``_checkpoint_state``.  Since
the pane-based Aggregate rewrite, windowed aggregates contribute per-(pane,
group) accumulator snapshots -- O(groups x panes) scalars -- rather than the
raw value buffers they used to hold, which shrinks both crash-recovery
checkpoints and the state containers live rebalance ships between shards.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import CheckpointError

_checkpoint_ids = itertools.count()


@dataclass(frozen=True)
class OperatorCheckpoint:
    """Deep-copied state of a single operator."""

    operator_name: str
    state: Mapping[str, Any]

    @classmethod
    def capture(cls, operator_name: str, state: Mapping[str, Any]) -> "OperatorCheckpoint":
        return cls(operator_name=operator_name, state=copy.deepcopy(dict(state)))

    def state_copy(self) -> dict:
        """A fresh deep copy, safe for the operator to mutate after restore."""
        return copy.deepcopy(dict(self.state))


@dataclass(frozen=True)
class DiagramCheckpoint:
    """Snapshot of every operator (and queue) in a diagram fragment."""

    checkpoint_id: int
    created_at: float
    operators: Mapping[str, OperatorCheckpoint]
    extra: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def capture(
        cls,
        created_at: float,
        operator_states: Mapping[str, Mapping[str, Any]],
        extra: Mapping[str, Any] | None = None,
    ) -> "DiagramCheckpoint":
        return cls(
            checkpoint_id=next(_checkpoint_ids),
            created_at=created_at,
            operators={
                name: OperatorCheckpoint.capture(name, state)
                for name, state in operator_states.items()
            },
            extra=copy.deepcopy(dict(extra or {})),
        )

    def operator_state(self, operator_name: str) -> dict:
        try:
            return self.operators[operator_name].state_copy()
        except KeyError as exc:
            raise CheckpointError(
                f"checkpoint {self.checkpoint_id} has no state for operator {operator_name!r}"
            ) from exc

    def matches(self, operator_names: set[str]) -> bool:
        """True when this checkpoint covers exactly ``operator_names``."""
        return set(self.operators) == set(operator_names)
