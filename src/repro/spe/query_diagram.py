"""Query diagrams: loop-free graphs of operators.

A :class:`QueryDiagram` describes the operators running on one processing
node (a *query diagram fragment* in the paper's terms), how they are wired
together, and which external streams enter and leave the fragment.

The builder also implements the query-diagram extensions of Section 3:

* :meth:`QueryDiagram.make_fault_tolerant` replaces every ``Union`` with an
  ``SUnion``, inserts an ``SUnion`` in front of every remaining multi-input
  operator, and appends an ``SOutput`` to every output stream that does not
  already have one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import DiagramError
from .operators.base import Operator
from .operators.soutput import SOutput
from .operators.sunion import SUnion
from .operators.union import Union


@dataclass(frozen=True)
class Connection:
    """A directed edge: ``source`` operator's output feeds ``target``'s ``port``."""

    source: str
    target: str
    port: int = 0


@dataclass(frozen=True)
class InputBinding:
    """An external input stream delivered to ``operator`` on ``port``."""

    stream: str
    operator: str
    port: int = 0


@dataclass(frozen=True)
class OutputBinding:
    """An external output stream produced by ``operator``."""

    stream: str
    operator: str


class QueryDiagram:
    """A loop-free operator graph with named external inputs and outputs."""

    def __init__(self, name: str = "diagram") -> None:
        self.name = name
        self.operators: dict[str, Operator] = {}
        self.connections: list[Connection] = []
        self.inputs: list[InputBinding] = []
        self.outputs: list[OutputBinding] = []

    # ------------------------------------------------------------------ construction
    def add_operator(self, operator: Operator) -> Operator:
        """Register ``operator``; names must be unique within the diagram."""
        if operator.name in self.operators:
            raise DiagramError(f"duplicate operator name {operator.name!r}")
        self.operators[operator.name] = operator
        return operator

    def connect(self, source: str | Operator, target: str | Operator, port: int = 0) -> None:
        """Wire ``source``'s output stream into ``target``'s input ``port``."""
        src = source.name if isinstance(source, Operator) else source
        dst = target.name if isinstance(target, Operator) else target
        for name in (src, dst):
            if name not in self.operators:
                raise DiagramError(f"unknown operator {name!r}; add it before connecting")
        if port >= self.operators[dst].arity:
            raise DiagramError(
                f"operator {dst!r} has arity {self.operators[dst].arity}; port {port} is invalid"
            )
        self.connections.append(Connection(src, dst, port))

    def bind_input(self, stream: str, operator: str | Operator, port: int = 0) -> None:
        """Declare that external stream ``stream`` feeds ``operator`` on ``port``."""
        name = operator.name if isinstance(operator, Operator) else operator
        if name not in self.operators:
            raise DiagramError(f"unknown operator {name!r}")
        if port >= self.operators[name].arity:
            raise DiagramError(f"port {port} invalid for operator {name!r}")
        self.inputs.append(InputBinding(stream, name, port))

    def bind_output(self, stream: str, operator: str | Operator) -> None:
        """Declare that ``operator``'s output leaves the fragment as ``stream``."""
        name = operator.name if isinstance(operator, Operator) else operator
        if name not in self.operators:
            raise DiagramError(f"unknown operator {name!r}")
        if any(o.stream == stream for o in self.outputs):
            raise DiagramError(f"duplicate output stream {stream!r}")
        self.outputs.append(OutputBinding(stream, name))

    # ------------------------------------------------------------------ introspection
    @property
    def input_streams(self) -> list[str]:
        seen: list[str] = []
        for binding in self.inputs:
            if binding.stream not in seen:
                seen.append(binding.stream)
        return seen

    @property
    def output_streams(self) -> list[str]:
        return [binding.stream for binding in self.outputs]

    def operator(self, name: str) -> Operator:
        try:
            return self.operators[name]
        except KeyError as exc:
            raise DiagramError(f"unknown operator {name!r}") from exc

    def downstream_of(self, name: str) -> list[Connection]:
        return [c for c in self.connections if c.source == name]

    def upstream_of(self, name: str) -> list[Connection]:
        return [c for c in self.connections if c.target == name]

    def inputs_of(self, name: str) -> list[InputBinding]:
        return [b for b in self.inputs if b.operator == name]

    def stateful_operators(self) -> list[str]:
        return [name for name, op in self.operators.items() if op.is_stateful]

    # ------------------------------------------------------------------ validation
    def topological_order(self) -> list[str]:
        """Operator names in dependency order; raises on cycles."""
        indegree = {name: 0 for name in self.operators}
        for connection in self.connections:
            indegree[connection.target] += 1
        ready = sorted(name for name, degree in indegree.items() if degree == 0)
        order: list[str] = []
        remaining = dict(indegree)
        while ready:
            current = ready.pop(0)
            order.append(current)
            for connection in self.downstream_of(current):
                remaining[connection.target] -= 1
                if remaining[connection.target] == 0:
                    ready.append(connection.target)
            ready.sort()
        if len(order) != len(self.operators):
            cyclic = sorted(set(self.operators) - set(order))
            raise DiagramError(f"query diagram has a cycle involving {cyclic}")
        return order

    def validate(self) -> None:
        """Check the diagram is loop-free and every input port is fed exactly once."""
        self.topological_order()
        fed: dict[tuple[str, int], int] = {}
        for connection in self.connections:
            fed[(connection.target, connection.port)] = (
                fed.get((connection.target, connection.port), 0) + 1
            )
        for binding in self.inputs:
            fed[(binding.operator, binding.port)] = fed.get((binding.operator, binding.port), 0) + 1
        for name, op in self.operators.items():
            for port in range(op.arity):
                count = fed.get((name, port), 0)
                if count == 0:
                    raise DiagramError(f"input port {port} of operator {name!r} is not fed")
                if count > 1:
                    raise DiagramError(
                        f"input port {port} of operator {name!r} is fed {count} times"
                    )
        if not self.outputs:
            raise DiagramError("query diagram has no output streams")
        bound_outputs = {b.operator for b in self.outputs}
        for name in self.operators:
            has_downstream = bool(self.downstream_of(name))
            if not has_downstream and name not in bound_outputs:
                raise DiagramError(f"operator {name!r} output is dangling")

    # ------------------------------------------------------------------ DPC transform
    def make_fault_tolerant(self, bucket_size: float = 0.1) -> "QueryDiagram":
        """Return a copy of this diagram extended for DPC (Section 3, item 4).

        * every :class:`Union` is replaced by an :class:`SUnion`;
        * an :class:`SUnion` is inserted in front of every other multi-input
          operator (e.g. Join) so its replicas process tuples in the same
          order;
        * an :class:`SOutput` is appended to every output stream that is not
          already produced by one.

        SUnions on the node's *input* streams are added by the processing
        node itself (they need access to the node's clock and delay budget),
        not by this transform.
        """
        transformed = QueryDiagram(name=f"{self.name}.ft")
        replaced_unions: dict[str, str] = {}
        for name, op in self.operators.items():
            if isinstance(op, Union) and not isinstance(op, SUnion):
                sunion = SUnion(
                    name=f"{name}.sunion",
                    arity=op.arity,
                    bucket_size=bucket_size,
                    output_schema=op.output_schema,
                )
                transformed.add_operator(sunion)
                replaced_unions[name] = sunion.name
            else:
                transformed.add_operator(op)

        def mapped(name: str) -> str:
            return replaced_unions.get(name, name)

        for connection in self.connections:
            transformed.connect(mapped(connection.source), mapped(connection.target), connection.port)
        for binding in self.inputs:
            transformed.bind_input(binding.stream, mapped(binding.operator), binding.port)

        # Insert SUnions in front of remaining multi-input operators (e.g. Join).
        for name in list(transformed.operators):
            op = transformed.operators[name]
            if op.arity < 2 or isinstance(op, SUnion):
                continue
            for port in range(op.arity):
                feeders = [
                    c for c in transformed.connections if c.target == name and c.port == port
                ]
                input_feeders = [
                    b for b in transformed.inputs if b.operator == name and b.port == port
                ]
                serializer = SUnion(
                    name=f"{name}.in{port}.sunion", arity=1, bucket_size=bucket_size
                )
                transformed.add_operator(serializer)
                for feeder in feeders:
                    transformed.connections.remove(feeder)
                    transformed.connect(feeder.source, serializer.name, 0)
                for binding in input_feeders:
                    transformed.inputs.remove(binding)
                    transformed.bind_input(binding.stream, serializer.name, 0)
                transformed.connect(serializer.name, name, port)

        # Append SOutput on every output stream lacking one.
        for binding in self.outputs:
            producer = mapped(binding.operator)
            if isinstance(transformed.operators[producer], SOutput):
                transformed.bind_output(binding.stream, producer)
                continue
            soutput = SOutput(name=f"{binding.stream}.soutput")
            transformed.add_operator(soutput)
            transformed.connect(producer, soutput.name, 0)
            transformed.bind_output(binding.stream, soutput.name)

        transformed.validate()
        return transformed

    # ------------------------------------------------------------------ misc
    def __iter__(self) -> Iterator[Operator]:
        return iter(self.operators.values())

    def __len__(self) -> int:
        return len(self.operators)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QueryDiagram {self.name!r} operators={len(self.operators)} "
            f"inputs={self.input_streams} outputs={self.output_streams}>"
        )


def linear_diagram(name: str, operators: Iterable[Operator], input_stream: str, output_stream: str) -> QueryDiagram:
    """Build a diagram that chains ``operators`` linearly from input to output."""
    diagram = QueryDiagram(name=name)
    ops = list(operators)
    if not ops:
        raise DiagramError("linear_diagram needs at least one operator")
    previous: Operator | None = None
    for op in ops:
        diagram.add_operator(op)
        if previous is not None:
            diagram.connect(previous, op)
        previous = op
    diagram.bind_input(input_stream, ops[0])
    diagram.bind_output(output_stream, ops[-1])
    diagram.validate()
    return diagram
