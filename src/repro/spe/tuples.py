"""Tuple data model extended with DPC tuple types.

The paper (Section 4.1, Table I) extends the classic Borealis tuple
``(t, a1, ..., am)`` with a type field and a serialization timestamp::

    (tuple_type, tuple_id, tuple_stime, a1, ..., am)

This module provides :class:`StreamTuple`, the immutable value object used on
every stream in the reproduction, plus :class:`TupleType` covering both the
data-stream types (INSERTION, TENTATIVE, BOUNDARY, UNDO, REC_DONE) and the
control-stream signals SUnion/SOutput send to the Consistency Manager
(UP_FAILURE, REC_REQUEST).

Hot-path design (see DESIGN.md, "Performance"): a simulated run pushes tens
of thousands of tuples through every operator of every replica, so the tuple
model is built for per-instance cost rather than generic convenience:

* ``StreamTuple`` is a ``__slots__`` class.  The type predicates
  (``is_data``, ``is_stable``, ...) are **plain attributes** precomputed from
  the interned :class:`TupleType` at construction -- reading one costs a slot
  load, not a property call plus an ``Enum`` membership test.
* The factory classmethods and the copying transforms build instances with
  ``object.__new__`` and direct slot stores, skipping ``__init__`` dispatch
  and, for the transforms, skipping payload-dict allocation entirely: the
  copy *shares* the source tuple's ``values`` mapping.
* Instances are immutable **by convention**: nothing in the codebase ever
  mutates a tuple (payload dicts included) after construction, and
  checkpoint containers deep-copy whatever they capture, so sharing payload
  mappings across relabeled copies is safe.  ``__slots__`` still rejects
  foreign attributes outright.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Iterable, Mapping


class TupleType(str, Enum):
    """Tuple types from Table I of the paper.

    Members are interned singletons; the predicate table below precomputes
    each member's classification once so per-tuple code never re-tests
    membership in a set of string enums.
    """

    #: Regular stable tuple.
    INSERTION = "insertion"
    #: Result of processing a subset of inputs; may later be corrected.
    TENTATIVE = "tentative"
    #: Punctuation + heartbeat: no later tuple will carry a smaller stime.
    BOUNDARY = "boundary"
    #: A suffix of the stream (everything after ``undo_from_id``) is revoked.
    UNDO = "undo"
    #: End of a reconciliation burst of corrections.
    REC_DONE = "rec_done"
    # --- control-stream signals (SUnion/SOutput -> Consistency Manager) ---
    #: SUnion signals that it entered an inconsistent state.
    UP_FAILURE = "up_failure"
    #: SUnion signals that its input was corrected and state can be reconciled.
    REC_REQUEST = "rec_request"


#: tuple_type -> (is_data, is_stable, is_tentative, is_boundary, is_undo,
#: is_rec_done), unpacked into the slots of every constructed tuple.
_PREDICATES_BY_TYPE: dict[TupleType, tuple[bool, bool, bool, bool, bool, bool]] = {
    TupleType.INSERTION: (True, True, False, False, False, False),
    TupleType.TENTATIVE: (True, False, True, False, False, False),
    TupleType.BOUNDARY: (False, False, False, True, False, False),
    TupleType.UNDO: (False, False, False, False, True, False),
    TupleType.REC_DONE: (False, False, False, False, False, True),
    TupleType.UP_FAILURE: (False, False, False, False, False, False),
    TupleType.REC_REQUEST: (False, False, False, False, False, False),
}


#: Tuple types that carry application data (payload values).
DATA_TYPES = frozenset({TupleType.INSERTION, TupleType.TENTATIVE})

#: Tuple types that may legally appear on a data stream between nodes.
STREAM_TYPES = frozenset(
    {
        TupleType.INSERTION,
        TupleType.TENTATIVE,
        TupleType.BOUNDARY,
        TupleType.UNDO,
        TupleType.REC_DONE,
    }
)

_new = object.__new__
_INSERTION = TupleType.INSERTION
_TENTATIVE = TupleType.TENTATIVE
_BOUNDARY = TupleType.BOUNDARY
_UNDO = TupleType.UNDO
_REC_DONE = TupleType.REC_DONE


class StreamTuple:
    """One immutable tuple on a stream.

    Attributes
    ----------
    tuple_type:
        One of :class:`TupleType`.
    tuple_id:
        Identifier unique within its stream, assigned in transmission order by
        the producer.  Because links are reliable and in-order, a single
        tuple_id suffices to describe "everything received so far".
    stime:
        The serialization timestamp ``tuple_stime`` used by SUnion to order
        tuples and by window operators to delimit windows.
    values:
        Mapping of attribute name to value.  Empty for BOUNDARY / UNDO /
        REC_DONE tuples.  Treated as frozen once attached; relabeled copies
        share it.
    undo_from_id:
        For UNDO tuples only: the id of the *last tuple not to be undone*.
    stable_seq:
        For stable tuples crossing node boundaries: the tuple's position in
        the logical stable stream (count of stable tuples before it).  Because
        replicas produce the same stable tuples in the same order, this
        position is replica-independent; consumers use it to resume
        subscriptions after switching replicas and to discard stable tuples
        they already received from another replica.
    is_data, is_stable, is_tentative, is_boundary, is_undo, is_rec_done:
        Predicate flags precomputed from ``tuple_type`` at construction.
    """

    __slots__ = (
        "tuple_type",
        "tuple_id",
        "stime",
        "values",
        "undo_from_id",
        "stable_seq",
        "is_data",
        "is_stable",
        "is_tentative",
        "is_boundary",
        "is_undo",
        "is_rec_done",
    )

    def __init__(
        self,
        tuple_type: TupleType,
        tuple_id: int,
        stime: float,
        values: Mapping[str, Any] | None = None,
        undo_from_id: int | None = None,
        stable_seq: int | None = None,
    ) -> None:
        self.tuple_type = tuple_type
        self.tuple_id = tuple_id
        self.stime = stime
        self.values = {} if values is None else values
        self.undo_from_id = undo_from_id
        self.stable_seq = stable_seq
        (
            self.is_data,
            self.is_stable,
            self.is_tentative,
            self.is_boundary,
            self.is_undo,
            self.is_rec_done,
        ) = _PREDICATES_BY_TYPE[tuple_type]

    # ---------------------------------------------------------------- classmethods
    @classmethod
    def insertion(cls, tuple_id: int, stime: float, values: Mapping[str, Any]) -> "StreamTuple":
        """Create a stable data tuple (the payload mapping is copied)."""
        t = _new(cls)
        t.tuple_type = _INSERTION
        t.tuple_id = tuple_id
        t.stime = stime
        t.values = dict(values)
        t.undo_from_id = None
        t.stable_seq = None
        t.is_data = True
        t.is_stable = True
        t.is_tentative = False
        t.is_boundary = False
        t.is_undo = False
        t.is_rec_done = False
        return t

    @classmethod
    def tentative(cls, tuple_id: int, stime: float, values: Mapping[str, Any]) -> "StreamTuple":
        """Create a tentative data tuple (the payload mapping is copied)."""
        t = _new(cls)
        t.tuple_type = _TENTATIVE
        t.tuple_id = tuple_id
        t.stime = stime
        t.values = dict(values)
        t.undo_from_id = None
        t.stable_seq = None
        t.is_data = True
        t.is_stable = False
        t.is_tentative = True
        t.is_boundary = False
        t.is_undo = False
        t.is_rec_done = False
        return t

    @classmethod
    def data(
        cls, tuple_id: int, stime: float, values: Mapping[str, Any], stable: bool
    ) -> "StreamTuple":
        """Create a data tuple **sharing** ``values`` (no defensive copy).

        The allocation-free sibling of :meth:`insertion` / :meth:`tentative`
        for relabeling paths whose payload already belongs to another tuple
        (SUnion serialization, SOutput forwarding, the node data path): the
        payload of a constructed tuple is frozen by convention, so re-wrapping
        it needs no copy.
        """
        t = _new(cls)
        t.tuple_id = tuple_id
        t.stime = stime
        t.values = values
        t.undo_from_id = None
        t.stable_seq = None
        t.is_data = True
        t.is_boundary = False
        t.is_undo = False
        t.is_rec_done = False
        if stable:
            t.tuple_type = _INSERTION
            t.is_stable = True
            t.is_tentative = False
        else:
            t.tuple_type = _TENTATIVE
            t.is_stable = False
            t.is_tentative = True
        return t

    @classmethod
    def boundary(cls, tuple_id: int, stime: float) -> "StreamTuple":
        """Create a boundary tuple promising no later tuple has stime < ``stime``."""
        t = _new(cls)
        t.tuple_type = _BOUNDARY
        t.tuple_id = tuple_id
        t.stime = stime
        t.values = {}
        t.undo_from_id = None
        t.stable_seq = None
        t.is_data = False
        t.is_stable = False
        t.is_tentative = False
        t.is_boundary = True
        t.is_undo = False
        t.is_rec_done = False
        return t

    @classmethod
    def undo(cls, tuple_id: int, stime: float, undo_from_id: int) -> "StreamTuple":
        """Create an undo tuple revoking every tuple after ``undo_from_id``."""
        t = _new(cls)
        t.tuple_type = _UNDO
        t.tuple_id = tuple_id
        t.stime = stime
        t.values = {}
        t.undo_from_id = undo_from_id
        t.stable_seq = None
        t.is_data = False
        t.is_stable = False
        t.is_tentative = False
        t.is_boundary = False
        t.is_undo = True
        t.is_rec_done = False
        return t

    @classmethod
    def rec_done(cls, tuple_id: int, stime: float) -> "StreamTuple":
        """Create a tuple marking the end of a burst of corrections."""
        t = _new(cls)
        t.tuple_type = _REC_DONE
        t.tuple_id = tuple_id
        t.stime = stime
        t.values = {}
        t.undo_from_id = None
        t.stable_seq = None
        t.is_data = False
        t.is_stable = False
        t.is_tentative = False
        t.is_boundary = False
        t.is_undo = False
        t.is_rec_done = True
        return t

    # ---------------------------------------------------------------- transforms
    def as_tentative(self) -> "StreamTuple":
        """Return a tentative copy of this tuple (data tuples only).

        The copy shares this tuple's payload mapping and **deliberately drops
        ``stable_seq`` and ``undo_from_id``**: a relabeled data tuple is a
        *new fact on a new stream position*.  ``stable_seq`` is the stamped
        position in a producer's logical *stable* stream -- a tentative copy
        has no such position (only stable tuples are numbered), and the
        stability downgrade happens before the data path stamps positions
        anyway.  ``undo_from_id`` only ever travels on UNDO tuples, which are
        not data and are returned unchanged.  Non-data tuples (boundaries,
        undos, REC_DONE) pass through as ``self``.
        """
        if not self.is_data:
            return self
        t = _new(StreamTuple)
        t.tuple_type = _TENTATIVE
        t.tuple_id = self.tuple_id
        t.stime = self.stime
        t.values = self.values
        t.undo_from_id = None
        t.stable_seq = None
        t.is_data = True
        t.is_stable = False
        t.is_tentative = True
        t.is_boundary = False
        t.is_undo = False
        t.is_rec_done = False
        return t

    def as_stable(self) -> "StreamTuple":
        """Return a stable copy of this tuple (data tuples only).

        Mirror of :meth:`as_tentative`: shares the payload and drops
        ``stable_seq`` / ``undo_from_id``.  The dropped ``stable_seq`` is
        load-bearing -- an upgraded tuple must *not* carry the position some
        other producer stamped on its tentative ancestor; the data path of
        whichever node emits the stable version assigns the authoritative
        position when it appends the tuple to its output buffer.
        """
        if not self.is_data:
            return self
        t = _new(StreamTuple)
        t.tuple_type = _INSERTION
        t.tuple_id = self.tuple_id
        t.stime = self.stime
        t.values = self.values
        t.undo_from_id = None
        t.stable_seq = None
        t.is_data = True
        t.is_stable = True
        t.is_tentative = False
        t.is_boundary = False
        t.is_undo = False
        t.is_rec_done = False
        return t

    def with_id(self, tuple_id: int) -> "StreamTuple":
        """Return a copy of this tuple carrying a different stream-local id."""
        t = _new(StreamTuple)
        t.tuple_type = self.tuple_type
        t.tuple_id = tuple_id
        t.stime = self.stime
        t.values = self.values
        t.undo_from_id = self.undo_from_id
        t.stable_seq = self.stable_seq
        t.is_data = self.is_data
        t.is_stable = self.is_stable
        t.is_tentative = self.is_tentative
        t.is_boundary = self.is_boundary
        t.is_undo = self.is_undo
        t.is_rec_done = self.is_rec_done
        return t

    def with_stable_seq(self, stable_seq: int) -> "StreamTuple":
        """Return a copy carrying its position in the logical stable stream."""
        t = _new(StreamTuple)
        t.tuple_type = self.tuple_type
        t.tuple_id = self.tuple_id
        t.stime = self.stime
        t.values = self.values
        t.undo_from_id = self.undo_from_id
        t.stable_seq = stable_seq
        t.is_data = self.is_data
        t.is_stable = self.is_stable
        t.is_tentative = self.is_tentative
        t.is_boundary = self.is_boundary
        t.is_undo = self.is_undo
        t.is_rec_done = self.is_rec_done
        return t

    def with_values(self, values: Mapping[str, Any]) -> "StreamTuple":
        """Return a copy of this tuple with different attribute values (copied)."""
        t = self.with_id(self.tuple_id)
        t.values = dict(values)
        return t

    def value(self, name: str, default: Any = None) -> Any:
        """Return attribute ``name`` or ``default`` when missing."""
        return self.values.get(name, default)

    # ---------------------------------------------------------------- dunder protocol
    def __eq__(self, other: object) -> bool:
        if other.__class__ is not StreamTuple:
            return NotImplemented
        return (
            self.tuple_type is other.tuple_type
            and self.tuple_id == other.tuple_id
            and self.stime == other.stime
            and self.values == other.values
            and self.undo_from_id == other.undo_from_id
            and self.stable_seq == other.stable_seq
        )

    __hash__ = None  # mutable payload mapping: identity-free hashing is a bug farm

    def __getstate__(self):
        """Slot state for pickling / deep-copying (checkpoint containers)."""
        return None, {slot: getattr(self, slot) for slot in StreamTuple.__slots__}

    def __setstate__(self, state) -> None:
        _dict, slots = state
        for slot, value in slots.items():
            setattr(self, slot, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = self.tuple_type.value.upper()
        if self.is_undo:
            return f"<{kind} id={self.tuple_id} undo_from={self.undo_from_id}>"
        if self.is_data:
            return f"<{kind} id={self.tuple_id} stime={self.stime:.3f} {dict(self.values)}>"
        return f"<{kind} id={self.tuple_id} stime={self.stime:.3f}>"


def count_tentative(tuples: Iterable[StreamTuple]) -> int:
    """Number of tentative tuples in ``tuples``."""
    return sum(1 for t in tuples if t.is_tentative)


def count_stable(tuples: Iterable[StreamTuple]) -> int:
    """Number of stable data tuples in ``tuples``."""
    return sum(1 for t in tuples if t.is_stable)


def data_only(tuples: Iterable[StreamTuple]) -> list[StreamTuple]:
    """Filter out non-data tuples (boundaries, undos, rec_done)."""
    return [t for t in tuples if t.is_data]


def max_stime(tuples: Iterable[StreamTuple], default: float = float("-inf")) -> float:
    """Largest stime among ``tuples`` or ``default`` when empty."""
    best = default
    for t in tuples:
        if t.stime > best:
            best = t.stime
    return best
