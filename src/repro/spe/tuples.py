"""Tuple data model extended with DPC tuple types.

The paper (Section 4.1, Table I) extends the classic Borealis tuple
``(t, a1, ..., am)`` with a type field and a serialization timestamp::

    (tuple_type, tuple_id, tuple_stime, a1, ..., am)

This module provides :class:`StreamTuple`, the immutable value object used on
every stream in the reproduction, plus :class:`TupleType` covering both the
data-stream types (INSERTION, TENTATIVE, BOUNDARY, UNDO, REC_DONE) and the
control-stream signals SUnion/SOutput send to the Consistency Manager
(UP_FAILURE, REC_REQUEST).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable, Mapping


class TupleType(str, Enum):
    """Tuple types from Table I of the paper."""

    #: Regular stable tuple.
    INSERTION = "insertion"
    #: Result of processing a subset of inputs; may later be corrected.
    TENTATIVE = "tentative"
    #: Punctuation + heartbeat: no later tuple will carry a smaller stime.
    BOUNDARY = "boundary"
    #: A suffix of the stream (everything after ``undo_from_id``) is revoked.
    UNDO = "undo"
    #: End of a reconciliation burst of corrections.
    REC_DONE = "rec_done"
    # --- control-stream signals (SUnion/SOutput -> Consistency Manager) ---
    #: SUnion signals that it entered an inconsistent state.
    UP_FAILURE = "up_failure"
    #: SUnion signals that its input was corrected and state can be reconciled.
    REC_REQUEST = "rec_request"


#: Tuple types that carry application data (payload values).
DATA_TYPES = frozenset({TupleType.INSERTION, TupleType.TENTATIVE})

#: Tuple types that may legally appear on a data stream between nodes.
STREAM_TYPES = frozenset(
    {
        TupleType.INSERTION,
        TupleType.TENTATIVE,
        TupleType.BOUNDARY,
        TupleType.UNDO,
        TupleType.REC_DONE,
    }
)


@dataclass(frozen=True)
class StreamTuple:
    """One immutable tuple on a stream.

    Attributes
    ----------
    tuple_type:
        One of :class:`TupleType`.
    tuple_id:
        Identifier unique within its stream, assigned in transmission order by
        the producer.  Because links are reliable and in-order, a single
        tuple_id suffices to describe "everything received so far".
    stime:
        The serialization timestamp ``tuple_stime`` used by SUnion to order
        tuples and by window operators to delimit windows.
    values:
        Mapping of attribute name to value.  Empty for BOUNDARY / UNDO /
        REC_DONE tuples.
    undo_from_id:
        For UNDO tuples only: the id of the *last tuple not to be undone*.
    stable_seq:
        For stable tuples crossing node boundaries: the tuple's position in
        the logical stable stream (count of stable tuples before it).  Because
        replicas produce the same stable tuples in the same order, this
        position is replica-independent; consumers use it to resume
        subscriptions after switching replicas and to discard stable tuples
        they already received from another replica.
    """

    tuple_type: TupleType
    tuple_id: int
    stime: float
    values: Mapping[str, Any] = field(default_factory=dict)
    undo_from_id: int | None = None
    stable_seq: int | None = None

    # ---------------------------------------------------------------- classmethods
    @classmethod
    def insertion(cls, tuple_id: int, stime: float, values: Mapping[str, Any]) -> "StreamTuple":
        """Create a stable data tuple."""
        return cls(TupleType.INSERTION, tuple_id, stime, dict(values))

    @classmethod
    def tentative(cls, tuple_id: int, stime: float, values: Mapping[str, Any]) -> "StreamTuple":
        """Create a tentative data tuple."""
        return cls(TupleType.TENTATIVE, tuple_id, stime, dict(values))

    @classmethod
    def boundary(cls, tuple_id: int, stime: float) -> "StreamTuple":
        """Create a boundary tuple promising no later tuple has stime < ``stime``."""
        return cls(TupleType.BOUNDARY, tuple_id, stime)

    @classmethod
    def undo(cls, tuple_id: int, stime: float, undo_from_id: int) -> "StreamTuple":
        """Create an undo tuple revoking every tuple after ``undo_from_id``."""
        return cls(TupleType.UNDO, tuple_id, stime, undo_from_id=undo_from_id)

    @classmethod
    def rec_done(cls, tuple_id: int, stime: float) -> "StreamTuple":
        """Create a tuple marking the end of a burst of corrections."""
        return cls(TupleType.REC_DONE, tuple_id, stime)

    # ---------------------------------------------------------------- predicates
    @property
    def is_data(self) -> bool:
        """True for INSERTION and TENTATIVE tuples."""
        return self.tuple_type in DATA_TYPES

    @property
    def is_stable(self) -> bool:
        """True for stable (INSERTION) data tuples."""
        return self.tuple_type is TupleType.INSERTION

    @property
    def is_tentative(self) -> bool:
        return self.tuple_type is TupleType.TENTATIVE

    @property
    def is_boundary(self) -> bool:
        return self.tuple_type is TupleType.BOUNDARY

    @property
    def is_undo(self) -> bool:
        return self.tuple_type is TupleType.UNDO

    @property
    def is_rec_done(self) -> bool:
        return self.tuple_type is TupleType.REC_DONE

    # ---------------------------------------------------------------- transforms
    def as_tentative(self) -> "StreamTuple":
        """Return a tentative copy of this tuple (data tuples only)."""
        if not self.is_data:
            return self
        return StreamTuple(TupleType.TENTATIVE, self.tuple_id, self.stime, self.values)

    def as_stable(self) -> "StreamTuple":
        """Return a stable copy of this tuple (data tuples only)."""
        if not self.is_data:
            return self
        return StreamTuple(TupleType.INSERTION, self.tuple_id, self.stime, self.values)

    def with_id(self, tuple_id: int) -> "StreamTuple":
        """Return a copy of this tuple carrying a different stream-local id."""
        return StreamTuple(
            self.tuple_type, tuple_id, self.stime, self.values, self.undo_from_id, self.stable_seq
        )

    def with_stable_seq(self, stable_seq: int) -> "StreamTuple":
        """Return a copy carrying its position in the logical stable stream."""
        return StreamTuple(
            self.tuple_type, self.tuple_id, self.stime, self.values, self.undo_from_id, stable_seq
        )

    def with_values(self, values: Mapping[str, Any]) -> "StreamTuple":
        """Return a copy of this tuple with different attribute values."""
        return StreamTuple(
            self.tuple_type, self.tuple_id, self.stime, dict(values), self.undo_from_id, self.stable_seq
        )

    def value(self, name: str, default: Any = None) -> Any:
        """Return attribute ``name`` or ``default`` when missing."""
        return self.values.get(name, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = self.tuple_type.value.upper()
        if self.is_undo:
            return f"<{kind} id={self.tuple_id} undo_from={self.undo_from_id}>"
        if self.is_data:
            return f"<{kind} id={self.tuple_id} stime={self.stime:.3f} {dict(self.values)}>"
        return f"<{kind} id={self.tuple_id} stime={self.stime:.3f}>"


def count_tentative(tuples: Iterable[StreamTuple]) -> int:
    """Number of tentative tuples in ``tuples``."""
    return sum(1 for t in tuples if t.is_tentative)


def count_stable(tuples: Iterable[StreamTuple]) -> int:
    """Number of stable data tuples in ``tuples``."""
    return sum(1 for t in tuples if t.is_stable)


def data_only(tuples: Iterable[StreamTuple]) -> list[StreamTuple]:
    """Filter out non-data tuples (boundaries, undos, rec_done)."""
    return [t for t in tuples if t.is_data]


def max_stime(tuples: Iterable[StreamTuple], default: float = float("-inf")) -> float:
    """Largest stime among ``tuples`` or ``default`` when empty."""
    best = default
    for t in tuples:
        if t.stime > best:
            best = t.stime
    return best
