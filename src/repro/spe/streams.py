"""Streams and stream buffers.

Two abstractions live here:

* :class:`StreamWriter` -- assigns monotonically increasing ``tuple_id`` values
  and remembers the last boundary emitted; every producer of a named stream
  (data sources, SOutput operators, the node Data Path) owns one.
* :class:`StreamLog` -- an append-only, truncatable record of everything
  produced on a stream.  Upstream nodes keep one per output stream so that any
  replica of a downstream neighbor can (re)subscribe and receive the suffix it
  is missing (Section 8.1, *Output Buffers*).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Any

from ..errors import StreamError
from .tuples import StreamTuple, TupleType


@dataclass
class StreamWriter:
    """Assigns stream-local tuple ids and builds tuples for one stream."""

    stream_name: str
    next_id: int = 0
    last_boundary_stime: float = float("-inf")

    def _take_id(self) -> int:
        tuple_id = self.next_id
        self.next_id += 1
        return tuple_id

    def insertion(self, stime: float, values: Mapping[str, Any]) -> StreamTuple:
        return StreamTuple.insertion(self._take_id(), stime, values)

    def tentative(self, stime: float, values: Mapping[str, Any]) -> StreamTuple:
        return StreamTuple.tentative(self._take_id(), stime, values)

    def data(self, stime: float, values: Mapping[str, Any], stable: bool) -> StreamTuple:
        """Emit a data tuple **sharing** ``values`` (relabeling fast path).

        Callers must hand over a mapping that is already frozen by convention
        (typically the payload of an existing tuple); see
        :meth:`StreamTuple.data`.
        """
        tuple_id = self.next_id
        self.next_id = tuple_id + 1
        return StreamTuple.data(tuple_id, stime, values, stable)

    def boundary(self, stime: float) -> StreamTuple:
        """Emit a boundary; boundaries must carry non-decreasing stimes."""
        if stime < self.last_boundary_stime:
            raise StreamError(
                f"boundary stime {stime} moves backwards on {self.stream_name!r} "
                f"(last was {self.last_boundary_stime})"
            )
        self.last_boundary_stime = stime
        return StreamTuple.boundary(self._take_id(), stime)

    def undo(self, stime: float, undo_from_id: int) -> StreamTuple:
        return StreamTuple.undo(self._take_id(), stime, undo_from_id)

    def rec_done(self, stime: float) -> StreamTuple:
        return StreamTuple.rec_done(self._take_id(), stime)

    def relabel(self, item: StreamTuple) -> StreamTuple:
        """Re-emit ``item`` on this stream with a fresh local id."""
        if item.is_boundary:
            return self.boundary(max(item.stime, self.last_boundary_stime))
        return item.with_id(self._take_id())

    def snapshot(self) -> dict:
        """State needed to restore this writer (used by node checkpoints)."""
        return {"next_id": self.next_id, "last_boundary_stime": self.last_boundary_stime}

    def restore(self, snapshot: Mapping[str, Any]) -> None:
        self.next_id = int(snapshot["next_id"])
        self.last_boundary_stime = float(snapshot["last_boundary_stime"])


@dataclass
class StreamLog:
    """Append-only log of the tuples produced on one stream.

    The log supports the three operations DPC needs:

    * ``append`` new tuples as they are produced;
    * ``replay_after(tuple_id)`` for a downstream replica that subscribes with
      the id of the last (stable) tuple it received;
    * ``truncate_through(tuple_id)`` once every replica of every downstream
      neighbor has acknowledged the prefix.
    """

    stream_name: str
    max_tuples: int | None = None
    _entries: list[StreamTuple] = field(default_factory=list)
    _truncated_through: int = -1

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[StreamTuple]:
        return iter(self._entries)

    @property
    def truncated_through(self) -> int:
        """Largest tuple_id that has been discarded from the log."""
        return self._truncated_through

    @property
    def last_id(self) -> int:
        """Id of the most recently appended tuple, or -1 when empty."""
        if self._entries:
            return self._entries[-1].tuple_id
        return self._truncated_through

    @property
    def is_full(self) -> bool:
        return self.max_tuples is not None and len(self._entries) >= self.max_tuples

    def append(self, item: StreamTuple) -> None:
        """Append one tuple; ids must be strictly increasing."""
        if self._entries and item.tuple_id <= self._entries[-1].tuple_id:
            raise StreamError(
                f"tuple id {item.tuple_id} not increasing on {self.stream_name!r} "
                f"(last was {self._entries[-1].tuple_id})"
            )
        if item.tuple_id <= self._truncated_through:
            raise StreamError(
                f"tuple id {item.tuple_id} was already truncated on {self.stream_name!r}"
            )
        self._entries.append(item)

    def extend(self, items: Iterable[StreamTuple]) -> None:
        for item in items:
            self.append(item)

    def _suffix_start(self, tuple_id: int) -> int:
        """Index of the first entry with id > ``tuple_id`` (ids are sorted)."""
        return bisect_right(self._entries, tuple_id, key=lambda t: t.tuple_id)

    def replay_after(self, tuple_id: int) -> list[StreamTuple]:
        """All tuples with id strictly greater than ``tuple_id``.

        Raises :class:`StreamError` if that suffix is no longer available
        because the log was truncated past it.  Appends keep ids strictly
        increasing, so the suffix is located by binary search: the log is
        scanned on every output flush and a linear scan would make long
        retained streams quadratic over a run.
        """
        if tuple_id < self._truncated_through:
            raise StreamError(
                f"cannot replay after id {tuple_id} on {self.stream_name!r}: "
                f"log truncated through {self._truncated_through}"
            )
        return self._entries[self._suffix_start(tuple_id):]

    def truncate_through(self, tuple_id: int) -> int:
        """Discard every tuple with id <= ``tuple_id``; returns count removed."""
        removed = self._suffix_start(tuple_id)
        if removed:
            self._truncated_through = max(self._truncated_through, tuple_id)
            del self._entries[:removed]
        return removed

    def last_stable_id(self) -> int:
        """Id of the last stable data tuple in the log, or -1 if none."""
        for item in reversed(self._entries):
            if item.is_stable:
                return item.tuple_id
        return -1

    def tail_after_last_stable(self) -> list[StreamTuple]:
        """The (tentative) suffix following the last stable tuple."""
        last = self.last_stable_id()
        return [t for t in self._entries if t.tuple_id > last and t.is_data]

    def data_tuples(self) -> list[StreamTuple]:
        return [t for t in self._entries if t.is_data]

    def clear(self) -> None:
        self._entries.clear()


def apply_undo(tuples: list[StreamTuple], undo: StreamTuple) -> list[StreamTuple]:
    """Return ``tuples`` with the suffix revoked by ``undo`` removed.

    ``undo.undo_from_id`` names the *last tuple not to be undone*; every later
    tuple is discarded.  Non-data tuples in the prefix are preserved.
    """
    if undo.tuple_type is not TupleType.UNDO:
        raise StreamError("apply_undo requires an UNDO tuple")
    keep_through = undo.undo_from_id if undo.undo_from_id is not None else -1
    return [t for t in tuples if t.tuple_id <= keep_through]
