"""Mergeable accumulators for incremental window aggregation.

The pane-based :class:`~repro.spe.operators.aggregate.Aggregate` keeps one
accumulator per (pane, group, spec) instead of buffering every raw input
value per overlapping window.  The contract every accumulator honours:

* ``add(value)`` -- fold one input value in, O(1);
* ``merge(other)`` -- fold another accumulator's partial in, O(1) for the
  incremental builtins (this is what closing a window does: merge the
  ``ceil(size/slide)`` pane partials in pane order);
* ``result()`` -- the aggregate value, with the *exact* edge-case semantics
  of the legacy buffered path (``sum`` of nothing is 0, ``avg`` of nothing
  is 0.0, ``min``/``max`` of nothing raise like ``min([])``);
* ``snapshot()`` / ``restore(state)`` -- plain-data round-trip used by the
  operator checkpoint machinery, so crash recovery and live rebalance ship
  O(groups x panes) scalars instead of O(buffered tuples) values.

``count``/``sum``/``avg``/``min``/``max`` have true incremental forms
(min/max keep per-pane partials, so no invertibility is needed).  A *custom*
aggregate callable only sees a finished list of values, so it gets a
:class:`BufferingAccumulator`; since a buffer merged in pane order can differ
from arrival order, the Aggregate operator keeps whole-window cells whenever
any spec is custom (see ``DESIGN.md``, "Window acceleration").
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from ..errors import OperatorError


class Accumulator:
    """Protocol base: ``add``/``merge``/``result`` + ``snapshot``/``restore``."""

    __slots__ = ()
    #: Tag stored in snapshots so a restore cannot cross accumulator kinds.
    kind = "abstract"

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def merge(self, other: "Accumulator") -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError

    def snapshot(self) -> dict:
        raise NotImplementedError

    def restore(self, state: Mapping[str, Any]) -> None:
        raise NotImplementedError

    def _check_kind(self, state: Mapping[str, Any]) -> None:
        if state.get("kind") != self.kind:
            raise OperatorError(
                f"cannot restore {state.get('kind')!r} snapshot into a "
                f"{self.kind!r} accumulator"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.snapshot()}>"


class CountAccumulator(Accumulator):
    """Running count of the (non-None) values folded in."""

    __slots__ = ("n",)
    kind = "count"

    def __init__(self) -> None:
        self.n = 0

    def add(self, value: Any) -> None:
        self.n += 1

    def merge(self, other: "CountAccumulator") -> None:
        self.n += other.n

    def result(self) -> int:
        return self.n

    def snapshot(self) -> dict:
        return {"kind": self.kind, "n": self.n}

    def restore(self, state: Mapping[str, Any]) -> None:
        self._check_kind(state)
        self.n = int(state["n"])


class SumAccumulator(Accumulator):
    """Running total, folded exactly like ``sum(values)`` (left fold from 0)."""

    __slots__ = ("total",)
    kind = "sum"

    def __init__(self) -> None:
        self.total: Any = 0

    def add(self, value: Any) -> None:
        self.total = self.total + value

    def merge(self, other: "SumAccumulator") -> None:
        self.total = self.total + other.total

    def result(self) -> Any:
        return self.total

    def snapshot(self) -> dict:
        return {"kind": self.kind, "total": self.total}

    def restore(self, state: Mapping[str, Any]) -> None:
        self._check_kind(state)
        self.total = state["total"]


class AvgAccumulator(Accumulator):
    """Running (total, count); ``result`` divides, 0.0 on an empty window."""

    __slots__ = ("total", "n")
    kind = "avg"

    def __init__(self) -> None:
        self.total: Any = 0
        self.n = 0

    def add(self, value: Any) -> None:
        self.total = self.total + value
        self.n += 1

    def merge(self, other: "AvgAccumulator") -> None:
        self.total = self.total + other.total
        self.n += other.n

    def result(self) -> Any:
        return self.total / self.n if self.n else 0.0

    def snapshot(self) -> dict:
        return {"kind": self.kind, "total": self.total, "n": self.n}

    def restore(self, state: Mapping[str, Any]) -> None:
        self._check_kind(state)
        self.total = state["total"]
        self.n = int(state["n"])


class MinAccumulator(Accumulator):
    """Running minimum; like ``min(values)``, ties keep the earliest value."""

    __slots__ = ("best", "has_value")
    kind = "min"

    def __init__(self) -> None:
        self.best: Any = None
        self.has_value = False

    def add(self, value: Any) -> None:
        if not self.has_value:
            self.best = value
            self.has_value = True
        elif value < self.best:
            self.best = value

    def merge(self, other: "MinAccumulator") -> None:
        if other.has_value:
            self.add(other.best)

    def result(self) -> Any:
        if not self.has_value:
            return min(())  # raises exactly like the legacy min([]) path
        return self.best

    def snapshot(self) -> dict:
        return {"kind": self.kind, "best": self.best, "has_value": self.has_value}

    def restore(self, state: Mapping[str, Any]) -> None:
        self._check_kind(state)
        self.best = state["best"]
        self.has_value = bool(state["has_value"])


class MaxAccumulator(Accumulator):
    """Running maximum; like ``max(values)``, ties keep the earliest value."""

    __slots__ = ("best", "has_value")
    kind = "max"

    def __init__(self) -> None:
        self.best: Any = None
        self.has_value = False

    def add(self, value: Any) -> None:
        if not self.has_value:
            self.best = value
            self.has_value = True
        elif value > self.best:
            self.best = value

    def merge(self, other: "MaxAccumulator") -> None:
        if other.has_value:
            self.add(other.best)

    def result(self) -> Any:
        if not self.has_value:
            return max(())
        return self.best

    def snapshot(self) -> dict:
        return {"kind": self.kind, "best": self.best, "has_value": self.has_value}

    def restore(self, state: Mapping[str, Any]) -> None:
        self._check_kind(state)
        self.best = state["best"]
        self.has_value = bool(state["has_value"])


class BufferingAccumulator(Accumulator):
    """Fallback for custom aggregate callables: buffer, then apply.

    ``merge`` concatenates buffers in merge (pane) order, which can differ
    from arrival order within a window; order-sensitive callables are why the
    Aggregate operator routes diagrams with any custom spec through
    whole-window cells, where values accumulate in arrival order exactly as
    the legacy implementation buffered them.
    """

    __slots__ = ("function", "values")
    kind = "buffer"

    def __init__(self, function: Callable[[Sequence[Any]], Any]) -> None:
        self.function = function
        self.values: list[Any] = []

    def add(self, value: Any) -> None:
        self.values.append(value)

    def merge(self, other: "BufferingAccumulator") -> None:
        self.values.extend(other.values)

    def result(self) -> Any:
        return self.function(self.values)

    def snapshot(self) -> dict:
        return {"kind": self.kind, "values": list(self.values)}

    def restore(self, state: Mapping[str, Any]) -> None:
        self._check_kind(state)
        self.values = list(state["values"])


#: Builtin aggregate functions with a true incremental accumulator.
INCREMENTAL_ACCUMULATORS: dict[str, Callable[[], Accumulator]] = {
    "count": CountAccumulator,
    "sum": SumAccumulator,
    "avg": AvgAccumulator,
    "min": MinAccumulator,
    "max": MaxAccumulator,
}


def is_incremental(function_name: str) -> bool:
    """True when ``function_name`` names a builtin with an O(1) accumulator."""
    return function_name in INCREMENTAL_ACCUMULATORS


def make_accumulator(
    function_name: str, function: Callable[[Sequence[Any]], Any]
) -> Accumulator:
    """Fresh accumulator for one aggregate spec (buffering when custom)."""
    factory = INCREMENTAL_ACCUMULATORS.get(function_name)
    if factory is not None:
        return factory()
    return BufferingAccumulator(function)
