"""Client application (and its DPC-aware proxy).

The paper assumes client applications either link a fault-tolerant library or
talk to the system through a proxy implementing DPC (Section 2.2).
:class:`ClientApplication` plays both roles in the simulation: it subscribes
to the replicas of the node producing its output stream, applies the same
upstream-switching rules a processing node would (via its own
:class:`~repro.core.consistency_manager.ConsistencyManager`), and records
everything it receives into a :class:`~repro.metrics.collector.MetricsCollector`
so experiments can report Proc_new, N_tentative, and the raw output trace.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..config import DPCConfig
from ..core.consistency_manager import ConsistencyManager
from ..core.protocol import DATA, TupleBatch
from ..core.states import NodeState
from ..metrics.collector import MetricsCollector
from ..core.clock import Clock
from ..sim.network import Message, Network
from ..spe.tuples import StreamTuple


class ClientApplication:
    """Receives one output stream of the distributed SPE and measures it."""

    def __init__(
        self,
        name: str,
        stream: str,
        simulator: Clock,
        network: Network,
        config: DPCConfig | None = None,
        sequence_attribute: str = "seq",
        keep_trace: bool = True,
        rng_seed: int | None = None,
    ) -> None:
        self.name = name
        self.endpoint = name
        self.stream = stream
        self.simulator = simulator
        self.network = network
        self.config = config or DPCConfig()
        self.metrics = MetricsCollector(
            stream=stream, sequence_attribute=sequence_attribute, keep_trace=keep_trace
        )
        self.cm = ConsistencyManager(
            owner=self, simulator=simulator, network=network, config=self.config, rng_seed=rng_seed
        )
        self._started = False
        network.register(self.endpoint, self._on_message)

    # ------------------------------------------------------------------ wiring
    def register_upstream(
        self,
        producers: Sequence[str],
        source_producers: Sequence[str] = (),
        push_producers: Sequence[str] = (),
    ) -> None:
        """Declare which endpoints can produce the client's stream."""
        self.cm.register_input(self.stream, producers, source_producers, push_producers)

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.cm.start()

    # ------------------------------------------------------------------ message handling
    def _on_message(self, message: Message, now: float) -> None:
        if self.cm.handle_message(message, now):
            return
        if message.kind != DATA:
            return
        batch: TupleBatch = message.payload
        if batch.stream != self.stream:
            return
        if batch.producer_node_state is not None:
            self.cm.note_producer_state(
                message.sender,
                batch.stream,
                batch.producer_node_state,
                batch.producer_stream_state,
                now,
            )
        role = self.cm.classify_producer(batch.stream, message.sender)
        if role == "ignore":
            return
        if batch.replay:
            self.cm.note_replay(batch.stream)
        record_arrival = self.cm.monitor(batch.stream).record_tuple
        for item in batch.tuples:
            if record_arrival(item, now) == "duplicate":
                continue
            self._record(item, now, role)

    def _record(self, item: StreamTuple, now: float, role: str) -> None:
        if item.is_boundary:
            return
        if role == "correcting" and item.is_tentative:
            # Fresh tentative data is taken from the primary connection only.
            return
        self.metrics.observe(item, now)

    # ------------------------------------------------------------------ ConsistencyOwner interface
    def on_input_failure(self, stream: str, now: float) -> None:
        """Clients have no processing to suspend; the trace simply shows the gap."""

    def on_inputs_healed(self, now: float) -> None:
        for monitor in self.cm.monitors.values():
            monitor.mark_healed()
        if self.cm.state is NodeState.UP_FAILURE:
            self.cm.set_state(NodeState.STABLE)

    def apply_local_undo(self, stream: str, now: float) -> None:
        """An UNDO reached the application: revoke the tentative suffix."""
        self.metrics.consistency.observe(StreamTuple.undo(tuple_id=-1, stime=now, undo_from_id=-1))

    def output_stream_states(self) -> Mapping[str, NodeState]:
        return {}

    def start_reconciliation(self, now: float) -> None:
        """Clients hold no operator state; nothing to reconcile."""

    def wants_reconciliation(self) -> bool:
        return False

    # ------------------------------------------------------------------ results
    @property
    def proc_new(self) -> float:
        """Maximum end-to-end latency of new output tuples (seconds)."""
        return self.metrics.latency.proc_new

    @property
    def n_tentative(self) -> int:
        """Total tentative tuples received (the quantity plotted in Figs 13-20)."""
        return self.metrics.consistency.total_tentative

    @property
    def stable_sequence(self) -> list:
        """Stable values of the sequence attribute, after applying undos."""
        return self.metrics.consistency.stable_values(self.metrics.sequence_attribute)

    def summary(self) -> dict:
        data = self.metrics.summary()
        data["client"] = self.name
        data["switches"] = self.cm.switches_performed
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClientApplication {self.name!r} stream={self.stream!r}>"
