"""Failure injection.

The experiments in the paper exercise three kinds of failures:

* **stream disconnection** -- an input stream stops reaching a node (the
  single-node experiments of Sections 5 and 6.1 temporarily disconnect one
  input stream without stopping the data source, which then replays the
  missing tuples when the failure heals);
* **boundary silence** -- a data source keeps sending data tuples but stops
  producing boundary tuples, so downstream SUnions cannot stabilize buckets
  (used in the chain experiments of Section 6.2 so the output rate stays
  constant across the failure);
* **node crash / network partition** -- a processing node becomes unreachable
  (handled via :class:`~repro.sim.network.Network` crash/partition hooks).

The :class:`FailureInjector` schedules these on the simulator and records a
timeline that experiments and tests can assert against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING

from ..errors import SimulationError
from .event_loop import Simulator
from .events import EventKind
from .network import Network

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .sources import DataSource


class FailureType(str, Enum):
    STREAM_DISCONNECT = "stream_disconnect"
    BOUNDARY_SILENCE = "boundary_silence"
    NODE_CRASH = "node_crash"
    PARTITION = "partition"


@dataclass(frozen=True)
class FailureRecord:
    """One injected failure, for reporting and assertions."""

    failure_type: FailureType
    target: str
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class FailureInjector:
    """Schedules failures and their healing on the simulator."""

    simulator: Simulator
    network: Network
    history: list[FailureRecord] = field(default_factory=list)

    # ------------------------------------------------------------------ stream-level failures
    def disconnect_stream(self, source: "DataSource", target: str, start: float, duration: float) -> FailureRecord:
        """Stop ``source``'s stream from reaching ``target`` between start and start+duration.

        The source keeps producing (and logging) tuples; when the failure
        heals, the normal subscription replay delivers everything that was
        missed, exactly like the paper's "after the failure heals, the data
        source replays all missing tuples while continuing to produce new
        tuples" (Section 5.2).
        """
        self._check_times(start, duration)
        record = FailureRecord(FailureType.STREAM_DISCONNECT, f"{source.name}->{target}", start, duration)
        self.history.append(record)
        self.simulator.schedule_at(
            start,
            lambda now: source.disconnect(target),
            kind=EventKind.FAILURE,
            description=f"disconnect {source.name}->{target}",
        )
        self.simulator.schedule_at(
            start + duration,
            lambda now: source.reconnect(target),
            kind=EventKind.RECOVERY,
            description=f"reconnect {source.name}->{target}",
        )
        return record

    def silence_boundaries(self, source: "DataSource", start: float, duration: float) -> FailureRecord:
        """Stop ``source`` from producing boundary tuples for ``duration`` seconds."""
        self._check_times(start, duration)
        record = FailureRecord(FailureType.BOUNDARY_SILENCE, source.name, start, duration)
        self.history.append(record)
        self.simulator.schedule_at(
            start,
            lambda now: source.set_boundaries_enabled(False),
            kind=EventKind.FAILURE,
            description=f"silence boundaries {source.name}",
        )
        self.simulator.schedule_at(
            start + duration,
            lambda now: source.set_boundaries_enabled(True),
            kind=EventKind.RECOVERY,
            description=f"resume boundaries {source.name}",
        )
        return record

    # ------------------------------------------------------------------ node / network failures
    def crash_processing_node(
        self, node, start: float, duration: float, guard=None
    ) -> FailureRecord:
        """Fail-stop ``node`` (a :class:`~repro.core.node.ProcessingNode`).

        Unlike :meth:`crash_node` this goes through the node's own
        crash/recover hooks, so on recovery it resubscribes to its upstream
        neighbors instead of merely rejoining the network.

        ``guard`` is an optional callable invoked at *fire time*, immediately
        before the crash: schedules validated against the compile-time
        topology use it to re-validate the target against the live deployment
        (a mid-run reconfiguration may have drained the node since the
        schedule was built).
        """
        self._check_times(start, duration)
        record = FailureRecord(FailureType.NODE_CRASH, node.name, start, duration)
        self.history.append(record)

        def crash(now, n=node, check=guard):
            if check is not None:
                check()
            n.crash()

        self.simulator.schedule_at(
            start,
            crash,
            kind=EventKind.FAILURE,
            description=f"crash {node.name}",
        )
        self.simulator.schedule_at(
            start + duration,
            lambda now, n=node: n.recover(),
            kind=EventKind.RECOVERY,
            description=f"recover {node.name}",
        )
        return record

    def crash_node(self, endpoint: str, start: float, duration: float) -> FailureRecord:
        """Crash ``endpoint`` at ``start`` and recover it ``duration`` later."""
        self._check_times(start, duration)
        record = FailureRecord(FailureType.NODE_CRASH, endpoint, start, duration)
        self.history.append(record)
        self.simulator.schedule_at(
            start,
            lambda now: self.network.crash(endpoint),
            kind=EventKind.FAILURE,
            description=f"crash {endpoint}",
        )
        self.simulator.schedule_at(
            start + duration,
            lambda now: self.network.recover(endpoint),
            kind=EventKind.RECOVERY,
            description=f"recover {endpoint}",
        )
        return record

    def partition(self, a: str, b: str, start: float, duration: float) -> FailureRecord:
        """Partition endpoints ``a`` and ``b`` for ``duration`` seconds."""
        self._check_times(start, duration)
        record = FailureRecord(FailureType.PARTITION, f"{a}<->{b}", start, duration)
        self.history.append(record)
        self.simulator.schedule_at(
            start,
            lambda now: self.network.partition(a, b),
            kind=EventKind.FAILURE,
            description=f"partition {a}<->{b}",
        )
        self.simulator.schedule_at(
            start + duration,
            lambda now: self.network.heal_partition(a, b),
            kind=EventKind.RECOVERY,
            description=f"heal {a}<->{b}",
        )
        return record

    def isolate_endpoint(self, endpoint: str, start: float, duration: float) -> FailureRecord:
        """Partition ``endpoint`` from every other endpoint for ``duration`` seconds.

        This is the network-split analogue of a branch crash: the endpoint
        keeps running but nothing reaches it and nothing it sends arrives, so
        downstream consumers go tentative and reconcile on heal.  The peer
        set is captured at *fire* time (a mid-run reconfiguration may have
        added or removed endpoints since scheduling), and exactly the
        captured pairs are healed.
        """
        self._check_times(start, duration)
        record = FailureRecord(FailureType.PARTITION, f"{endpoint}<->*", start, duration)
        self.history.append(record)
        isolated: list[str] = []

        def cut(now: float) -> None:
            for other in self.network.endpoints():
                if other != endpoint:
                    self.network.partition(endpoint, other)
                    isolated.append(other)

        def heal(now: float) -> None:
            for other in isolated:
                self.network.heal_partition(endpoint, other)

        self.simulator.schedule_at(
            start, cut, kind=EventKind.FAILURE, description=f"isolate {endpoint}"
        )
        self.simulator.schedule_at(
            start + duration, heal, kind=EventKind.RECOVERY, description=f"rejoin {endpoint}"
        )
        return record

    # ------------------------------------------------------------------ helpers
    def _check_times(self, start: float, duration: float) -> None:
        if start < self.simulator.now:
            raise SimulationError(f"failure start {start} is in the past (now={self.simulator.now})")
        if duration <= 0:
            raise SimulationError(f"failure duration must be positive, got {duration}")

    def overlapping(self) -> bool:
        """True when any two injected failures overlap in time."""
        intervals = sorted((r.start, r.end) for r in self.history)
        for (start_a, end_a), (start_b, _end_b) in zip(intervals, intervals[1:]):
            if start_b < end_a:
                return True
        return False
