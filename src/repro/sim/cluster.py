"""Cluster assembly: wire sources, replicated processing nodes, and clients.

The experiments in the paper use two deployment shapes:

* a single (optionally replicated) processing node fed by three data sources
  (Figures 10 and 12, Table III, Figure 13);
* a chain of up to four replicated processing nodes (Figure 14) where the
  first node merges three source streams and each subsequent node processes
  its predecessor's output (Figures 15, 16, 18, 19, 20).

:class:`Cluster` owns the simulator, network, failure injector, sources,
nodes, and clients of one such deployment and provides the small amount of
orchestration the experiments need (start everything, run for a while, look at
the client's metrics).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..config import DPCConfig, SimulationConfig
from ..core.node import ProcessingNode
from ..errors import ConfigurationError
from ..spe.operators import SJoin, SOutput, SUnion
from ..spe.query_diagram import QueryDiagram
from ..workloads.generators import PayloadFactory, default_payload_factory
from .client import ClientApplication
from .event_loop import Simulator
from .failures import FailureInjector
from .network import Network
from .sources import DataSource


@dataclass
class Cluster:
    """A fully wired simulated deployment."""

    simulator: Simulator
    network: Network
    failures: FailureInjector
    sources: list[DataSource] = field(default_factory=list)
    #: Replica groups: nodes[i] is the list of replicas of logical node i+1.
    nodes: list[list[ProcessingNode]] = field(default_factory=list)
    clients: list[ClientApplication] = field(default_factory=list)

    # ------------------------------------------------------------------ access helpers
    @property
    def client(self) -> ClientApplication:
        if not self.clients:
            raise ConfigurationError("cluster has no client")
        return self.clients[0]

    def all_nodes(self) -> list[ProcessingNode]:
        return [replica for group in self.nodes for replica in group]

    def node(self, level: int, replica: int = 0) -> ProcessingNode:
        """Replica ``replica`` of the ``level``-th node in the chain (0-based)."""
        return self.nodes[level][replica]

    def source(self, index: int) -> DataSource:
        return self.sources[index]

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> None:
        for source in self.sources:
            source.start()
        for node in self.all_nodes():
            node.start()
        for client in self.clients:
            client.start()

    def run_for(self, duration: float) -> float:
        return self.simulator.run_for(duration)

    def run_until(self, end_time: float) -> float:
        return self.simulator.run_until(end_time)

    # ------------------------------------------------------------------ summaries
    def summary(self) -> dict:
        return {
            "now": self.simulator.now,
            "sources": [s.tuples_produced for s in self.sources],
            "nodes": [[replica.statistics() for replica in group] for group in self.nodes],
            "clients": [c.summary() for c in self.clients],
        }


# --------------------------------------------------------------------------- diagram factories
def merge_diagram(
    name: str,
    input_streams: Sequence[str],
    output_stream: str,
    bucket_size: float,
    join_state_size: int | None = None,
) -> QueryDiagram:
    """The first-node fragment: SUnion over the sources (+ optional SJoin) + SOutput.

    Matches the experimental setup of Section 5.2 / Figure 12: "an SUnion that
    merges these streams into one, an SJoin with a 100-tuple state size, and an
    SOutput".
    """
    diagram = QueryDiagram(name=name)
    merge = SUnion(name=f"{name}.sunion", arity=len(input_streams), bucket_size=bucket_size)
    diagram.add_operator(merge)
    last = merge
    if join_state_size is not None:
        sjoin = SJoin(name=f"{name}.sjoin", state_size=join_state_size)
        diagram.add_operator(sjoin)
        diagram.connect(merge, sjoin)
        last = sjoin
    soutput = SOutput(name=f"{name}.soutput")
    diagram.add_operator(soutput)
    diagram.connect(last, soutput)
    for port, stream in enumerate(input_streams):
        diagram.bind_input(stream, merge, port)
    diagram.bind_output(output_stream, soutput)
    diagram.validate()
    return diagram


def relay_diagram(
    name: str,
    input_stream: str,
    output_stream: str,
    bucket_size: float,
) -> QueryDiagram:
    """A downstream-node fragment: a single-input SUnion followed by an SOutput."""
    diagram = QueryDiagram(name=name)
    sunion = SUnion(name=f"{name}.sunion", arity=1, bucket_size=bucket_size)
    soutput = SOutput(name=f"{name}.soutput")
    diagram.add_operator(sunion)
    diagram.add_operator(soutput)
    diagram.connect(sunion, soutput)
    diagram.bind_input(input_stream, sunion)
    diagram.bind_output(output_stream, soutput)
    diagram.validate()
    return diagram


# --------------------------------------------------------------------------- cluster builders
def build_chain_cluster(
    chain_depth: int = 1,
    replicas_per_node: int = 2,
    n_input_streams: int = 3,
    aggregate_rate: float = 300.0,
    config: DPCConfig | None = None,
    sim_config: SimulationConfig | None = None,
    payload_factory: PayloadFactory = default_payload_factory,
    join_state_size: int | None = 100,
    per_node_delay: float | None = None,
    diagram_factory: Callable[[str, Sequence[str], str], QueryDiagram] | None = None,
    seed: int | None = None,
) -> Cluster:
    """Build the replicated chain deployment of Figure 14.

    ``chain_depth`` = 1 with ``replicas_per_node`` = 2 gives the single
    replicated-node setup of Figure 12; ``replicas_per_node`` = 1 gives the
    unreplicated single-node setup of Figure 10.

    ``per_node_delay`` overrides the delay budget D assigned to every node;
    when omitted it is derived from ``config.node_delay(chain_depth)`` (which
    honours the UNIFORM / FULL delay-assignment strategies of Section 6.3).

    ``seed`` makes the deployment's randomness explicit and reproducible: it
    seeds every consistency manager's tie-breaking RNG and staggers the
    sources' start times by a seed-derived fraction of a batch interval, so
    two clusters built with the same seed behave identically and different
    seeds produce measurably different (but statistically equivalent) runs.
    ``seed=None`` keeps the exact unjittered timing of the default deployment.
    """
    if chain_depth < 1:
        raise ConfigurationError("chain_depth must be >= 1")
    if replicas_per_node < 1:
        raise ConfigurationError("replicas_per_node must be >= 1")
    config = config or DPCConfig()
    sim_config = sim_config or SimulationConfig()
    config.validate()
    sim_config.validate()

    simulator = Simulator()
    network = Network(simulator, default_latency=sim_config.network_latency)
    failures = FailureInjector(simulator=simulator, network=network)
    cluster = Cluster(simulator=simulator, network=network, failures=failures)

    if per_node_delay is None:
        per_node_delay = config.node_delay(chain_depth)
    # One offset for every source: the whole workload shifts in time (so runs
    # with different seeds genuinely differ) while the sources stay mutually
    # aligned, which the end-of-run consistency accounting relies on.
    start_offset = (
        random.Random(seed).uniform(0.0, sim_config.batch_interval * 0.5)
        if seed is not None
        else 0.0
    )

    # --- sources ---------------------------------------------------------------
    input_streams = [f"s{i + 1}" for i in range(n_input_streams)]
    per_stream_rate = aggregate_rate / n_input_streams
    for index, stream in enumerate(input_streams):
        source = DataSource(
            name=f"source.{stream}",
            stream=stream,
            simulator=simulator,
            network=network,
            rate=per_stream_rate,
            boundary_interval=config.boundary_interval,
            batch_interval=sim_config.batch_interval,
            payload=payload_factory(index, n_input_streams),
            start_time=start_offset,
        )
        cluster.sources.append(source)

    # --- processing nodes --------------------------------------------------------
    def replica_names(level: int) -> list[str]:
        return [
            f"node{level + 1}" + ("" if r == 0 else "'" * r) for r in range(replicas_per_node)
        ]

    previous_output: str | None = None
    for level in range(chain_depth):
        group: list[ProcessingNode] = []
        output_stream = f"node{level + 1}.out"
        names = replica_names(level)
        for replica_index, node_name in enumerate(names):
            if level == 0:
                if diagram_factory is not None:
                    diagram = diagram_factory(node_name, input_streams, output_stream)
                else:
                    diagram = merge_diagram(
                        node_name,
                        input_streams,
                        output_stream,
                        bucket_size=config.bucket_size,
                        join_state_size=join_state_size,
                    )
            else:
                diagram = relay_diagram(
                    node_name, previous_output, output_stream, bucket_size=config.bucket_size
                )
            partners = [other for other in names if other != node_name]
            node = ProcessingNode(
                name=node_name,
                diagram=diagram,
                simulator=simulator,
                network=network,
                config=config,
                sim_config=sim_config,
                assigned_delay=per_node_delay,
                replica_partners=partners,
                rng_seed=seed,
            )
            group.append(node)
        cluster.nodes.append(group)
        previous_output = output_stream

    # --- wiring: sources -> first node replicas ----------------------------------
    for source in cluster.sources:
        for node in cluster.nodes[0]:
            source.subscribe(node.endpoint)
    for node in cluster.nodes[0]:
        for source in cluster.sources:
            node.register_input_stream(
                source.stream, producers=[source.name], source_producers=[source.name]
            )

    # --- wiring: node level k -> level k+1 ----------------------------------------
    # Nodes push their DPC state to registered watchers every keepalive period
    # (replacing probe round trips) whenever the push cadence can keep up with
    # the configured keepalive; otherwise consumers fall back to probing.
    push_state = config.keepalive_period + 1e-12 >= sim_config.batch_interval
    for level in range(1, chain_depth):
        upstream_group = cluster.nodes[level - 1]
        upstream_stream = f"node{level}.out"
        upstream_names = [n.endpoint for n in upstream_group]
        for node in cluster.nodes[level]:
            node.register_input_stream(
                upstream_stream,
                producers=upstream_names,
                push_producers=upstream_names if push_state else (),
            )
            # Every downstream replica initially reads from the first upstream
            # replica; DPC switches it if that replica fails.
            upstream_group[0].register_subscriber(upstream_stream, node.endpoint)
            if push_state:
                for upstream in upstream_group:
                    upstream.add_state_watcher(node.endpoint)

    # --- client --------------------------------------------------------------------
    last_group = cluster.nodes[-1]
    last_stream = f"node{chain_depth}.out"
    client = ClientApplication(
        name="client",
        stream=last_stream,
        simulator=simulator,
        network=network,
        config=config,
        rng_seed=seed,
    )
    last_names = [n.endpoint for n in last_group]
    client.register_upstream(
        producers=last_names, push_producers=last_names if push_state else ()
    )
    last_group[0].register_subscriber(last_stream, client.endpoint)
    if push_state:
        for node in last_group:
            node.add_state_watcher(client.endpoint)
    cluster.clients.append(client)
    return cluster


def build_single_node_cluster(
    n_input_streams: int = 3,
    aggregate_rate: float = 300.0,
    replicated: bool = False,
    config: DPCConfig | None = None,
    sim_config: SimulationConfig | None = None,
    join_state_size: int | None = None,
    payload_factory: PayloadFactory = default_payload_factory,
) -> Cluster:
    """Single processing node (Figure 10 without replica, Figure 12 with)."""
    return build_chain_cluster(
        chain_depth=1,
        replicas_per_node=2 if replicated else 1,
        n_input_streams=n_input_streams,
        aggregate_rate=aggregate_rate,
        config=config,
        sim_config=sim_config,
        join_state_size=join_state_size,
        payload_factory=payload_factory,
    )
