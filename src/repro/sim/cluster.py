"""Cluster container, fragment diagram factories, and the legacy builders.

The paper's experiments use two deployment shapes -- a single (optionally
replicated) processing node fed by three data sources (Figures 10 and 12,
Table III, Figure 13) and a chain of up to four replicated nodes
(Figures 15, 16, 18, 19, 20) -- but its query diagrams are general DAGs.

Deployment construction lives in the layered :mod:`repro.deploy` control
plane: ``compile(topology)`` produces an inspectable
:class:`~repro.deploy.Placement`, and ``placement.deploy(...)`` materializes
it into a live :class:`~repro.deploy.Deployment`.  The historical one-shot
builders survive here as thin shims over that pipeline --
:func:`build_dag_cluster` compiles-and-deploys in one call and returns the
deployment's :class:`Cluster`, and :func:`build_chain_cluster` is the sugar
that compiles the paper's chain shape to a path topology first.

:class:`Cluster` owns the simulator, network, failure injector, sources,
nodes, and clients of one such deployment and provides the small amount of
orchestration the experiments need (start everything, run for a while, look at
the client's metrics).  The fragment diagram factories
(:func:`merge_diagram`, :func:`relay_diagram`, :func:`shard_relay_diagram`)
also live here; the deploy step instantiates them per replica.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..config import DPCConfig, SimulationConfig
from ..core.delay_planner import DelayPlanner
from ..core.node import ProcessingNode
from ..errors import ConfigurationError
from ..spe.operators import Filter, SJoin, SOutput, SUnion
from ..spe.query_diagram import QueryDiagram
from ..topology import SelectPredicate, Topology
from ..workloads.generators import PayloadFactory, default_payload_factory
from .client import ClientApplication
from .event_loop import Simulator
from .failures import FailureInjector
from .network import Network
from .sources import DataSource


@dataclass
class Cluster:
    """A fully wired simulated deployment."""

    simulator: Simulator
    network: Network
    failures: FailureInjector
    sources: list[DataSource] = field(default_factory=list)
    #: Replica groups in topological order: nodes[i] is the list of replicas
    #: of the i-th logical node (for a chain, the node at level i).
    nodes: list[list[ProcessingNode]] = field(default_factory=list)
    clients: list[ClientApplication] = field(default_factory=list)
    #: Replica groups by logical node name (the canonical addressing).
    node_groups: dict[str, list[ProcessingNode]] = field(default_factory=dict)
    #: Source stream name -> processing-node replicas consuming it directly.
    stream_consumers: dict[str, list[ProcessingNode]] = field(default_factory=dict)
    #: The deployment graph this cluster was built from (None for hand wiring).
    topology: Topology | None = None
    #: Logical nodes a live reconfiguration has drained (they route no data
    #: anymore, only punctuation).  Shared with the owning Deployment; failure
    #: injection consults it at fire time so kill schedules validated against
    #: the compile-time topology cannot target an already-drained node.
    drained_nodes: set[str] = field(default_factory=set)
    #: The control-plane handle that built this cluster (None for hand wiring
    #: or direct builder use before the deployment handle is attached).
    deployment: object | None = None

    # ------------------------------------------------------------------ access helpers
    @property
    def client(self) -> ClientApplication:
        """The *primary* sink's client (``clients[0]``).

        Multi-sink deployments attach one measuring client per sink; use
        :attr:`clients` (or the experiment harness, which aggregates across
        every sink) when the topology fans out to several sinks.
        """
        if not self.clients:
            raise ConfigurationError("cluster has no client")
        return self.clients[0]

    def all_nodes(self) -> list[ProcessingNode]:
        return [replica for group in self.nodes for replica in group]

    def node_group(self, key: str | int) -> list[ProcessingNode]:
        """All replicas of a logical node, by name or topological-order index."""
        if isinstance(key, str):
            try:
                return self.node_groups[key]
            except KeyError as exc:
                raise ConfigurationError(
                    f"cluster has no node {key!r}; known nodes: {list(self.node_groups)}"
                ) from exc
        try:
            return self.nodes[key]
        except IndexError as exc:
            raise ConfigurationError(
                f"cluster has no node at level {key}; it has {len(self.nodes)} level(s)"
            ) from exc

    def node(self, key: str | int, replica: int = 0) -> ProcessingNode:
        """Replica ``replica`` of a logical node.

        ``key`` is the node's *name* (``cluster.node("merge", replica=1)``).
        An integer ``key`` is the thin level-based shim kept for the chain
        experiments: it indexes the topological order, which for a chain is
        the chain level.
        """
        group = self.node_group(key)
        try:
            return group[replica]
        except IndexError as exc:
            raise ConfigurationError(
                f"node {key!r} has {len(group)} replica(s); replica {replica} does not exist"
            ) from exc

    def consumers_of(self, stream: str) -> list[ProcessingNode]:
        """Processing nodes directly consuming source stream ``stream``."""
        consumers = self.stream_consumers.get(stream)
        if consumers is not None:
            return consumers
        # Hand-wired legacy clusters: every first-group node reads every source.
        return self.nodes[0] if self.nodes else []

    def source(self, index: int) -> DataSource:
        return self.sources[index]

    def assert_kill_target_live(self, name: str) -> None:
        """Reject killing a node a live reconfiguration has already drained.

        Failure schedules are validated against the compile-time topology
        when they are built; this is the fire-time complement, validated
        against the *current* deployment: once ``Deployment.apply`` has
        evacuated a shard, crashing it no longer models anything (the
        fragment routes no data) and almost certainly indicates a schedule
        that predates the reconfiguration.
        """
        if name in self.drained_nodes:
            raise ConfigurationError(
                f"failure schedule kills node {name!r}, but a rebalance plan has "
                f"drained it; kill targets must be validated against the current "
                f"deployment, not the compile-time topology"
            )

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> None:
        for source in self.sources:
            source.start()
        for node in self.all_nodes():
            node.start()
        for client in self.clients:
            client.start()

    def run_for(self, duration: float) -> float:
        return self.simulator.run_for(duration)

    def run_until(self, end_time: float) -> float:
        return self.simulator.run_until(end_time)

    # ------------------------------------------------------------------ summaries
    def summary(self) -> dict:
        return {
            "now": self.simulator.now,
            "sources": [s.tuples_produced for s in self.sources],
            "nodes": [[replica.statistics() for replica in group] for group in self.nodes],
            "clients": [c.summary() for c in self.clients],
        }


# --------------------------------------------------------------------------- diagram factories
def merge_diagram(
    name: str,
    input_streams: Sequence[str],
    output_stream: str,
    bucket_size: float,
    join_state_size: int | None = None,
    select: SelectPredicate | None = None,
) -> QueryDiagram:
    """The first-node fragment: SUnion over the sources (+ optional SJoin) + SOutput.

    Matches the experimental setup of Section 5.2 / Figure 12: "an SUnion that
    merges these streams into one, an SJoin with a 100-tuple state size, and an
    SOutput".  ``select`` optionally inserts a deterministic Filter before the
    SOutput (the branch-partitioning fragments of DAG deployments).
    """
    diagram = QueryDiagram(name=name)
    merge = SUnion(name=f"{name}.sunion", arity=len(input_streams), bucket_size=bucket_size)
    diagram.add_operator(merge)
    last = merge
    if join_state_size is not None:
        sjoin = SJoin(name=f"{name}.sjoin", state_size=join_state_size)
        diagram.add_operator(sjoin)
        diagram.connect(last, sjoin)
        last = sjoin
    if select is not None:
        selector = Filter(name=f"{name}.filter", predicate=select)
        diagram.add_operator(selector)
        diagram.connect(last, selector)
        last = selector
    soutput = SOutput(name=f"{name}.soutput")
    diagram.add_operator(soutput)
    diagram.connect(last, soutput)
    for port, stream in enumerate(input_streams):
        diagram.bind_input(stream, merge, port)
    diagram.bind_output(output_stream, soutput)
    diagram.validate()
    return diagram


def relay_diagram(
    name: str,
    input_stream: str,
    output_stream: str,
    bucket_size: float,
    select: SelectPredicate | None = None,
    join_state_size: int | None = None,
) -> QueryDiagram:
    """A downstream-node fragment: a single-input SUnion followed by an SOutput.

    ``select`` optionally inserts a deterministic Filter between the two --
    the fragment run by the partitioned branches of a diamond deployment.
    ``join_state_size`` optionally gives the relay the deployment's stateful
    SJoin (nodes marked ``stateful`` in the topology).
    """
    diagram = QueryDiagram(name=name)
    sunion = SUnion(name=f"{name}.sunion", arity=1, bucket_size=bucket_size)
    diagram.add_operator(sunion)
    last = sunion
    if join_state_size is not None:
        sjoin = SJoin(name=f"{name}.sjoin", state_size=join_state_size)
        diagram.add_operator(sjoin)
        diagram.connect(last, sjoin)
        last = sjoin
    if select is not None:
        selector = Filter(name=f"{name}.filter", predicate=select)
        diagram.add_operator(selector)
        diagram.connect(last, selector)
        last = selector
    soutput = SOutput(name=f"{name}.soutput")
    diagram.add_operator(soutput)
    diagram.connect(last, soutput)
    diagram.bind_input(input_stream, sunion)
    diagram.bind_output(output_stream, soutput)
    diagram.validate()
    return diagram


def shard_relay_diagram(
    name: str,
    input_stream: str,
    output_stream: str,
    bucket_size: float,
    select: SelectPredicate,
    join_state_size: int | None = None,
) -> QueryDiagram:
    """A shard fragment: ingress Filter (key-hash slice) -> SUnion [-> SJoin] -> SOutput.

    Unlike :func:`relay_diagram` (which filters *after* the SUnion), the
    shard placement drops foreign-slice tuples before they are serialized,
    so the SUnion's buckets, the stateful join, the redo-driven
    reconciliation, and the SOutput's stream all carry only this shard's 1/N
    of the data.  Boundary, UNDO, and REC_DONE tuples pass through the
    filter untouched (the base operator routes control tuples around
    ``_process_data``), so failure detection and bucket stabilization behave
    exactly as in a relay.
    """
    diagram = QueryDiagram(name=name)
    selector = Filter(name=f"{name}.filter", predicate=select)
    diagram.add_operator(selector)
    sunion = SUnion(name=f"{name}.sunion", arity=1, bucket_size=bucket_size)
    diagram.add_operator(sunion)
    diagram.connect(selector, sunion)
    last: Filter | SUnion | SJoin = sunion
    if join_state_size is not None:
        sjoin = SJoin(name=f"{name}.sjoin", state_size=join_state_size)
        diagram.add_operator(sjoin)
        diagram.connect(last, sjoin)
        last = sjoin
    soutput = SOutput(name=f"{name}.soutput")
    diagram.add_operator(soutput)
    diagram.connect(last, soutput)
    diagram.bind_input(input_stream, selector)
    diagram.bind_output(output_stream, soutput)
    diagram.validate()
    return diagram


# --------------------------------------------------------------------------- cluster builders
def _node_delay_budgets(
    topology: Topology, config: DPCConfig, per_node_delay: float | None
) -> dict[str, float]:
    """Per-node delay budgets D for every logical node of ``topology``.

    An explicit ``per_node_delay`` overrides every node (the chain
    experiments assign D per node directly).  Otherwise the budgets come
    from a :class:`~repro.core.delay_planner.DelayPlanner` over the
    deployment graph, so the UNIFORM strategy splits the end-to-end bound X
    along the *longest* entry-to-sink path -- short branches under-use the
    budget instead of over-assigning it when paths reconverge.
    """
    if per_node_delay is not None:
        return {name: per_node_delay for name in topology.node_names}
    try:
        planner = DelayPlanner.for_topology(
            topology,
            total_budget=config.max_incremental_latency,
            queuing_allowance=config.queuing_allowance,
        )
        return dict(planner.plan(config.delay_assignment).per_node)
    except ConfigurationError:
        # Degenerate planner input (e.g. queuing allowance >= X): keep the
        # legacy clamped scalar semantics of DPCConfig.node_delay.
        fallback = config.node_delay(topology.depth())
        return {name: fallback for name in topology.node_names}


def build_dag_cluster(
    topology: Topology,
    replicas_per_node: int = 2,
    aggregate_rate: float = 300.0,
    config: DPCConfig | None = None,
    sim_config: SimulationConfig | None = None,
    payload_factory: PayloadFactory = default_payload_factory,
    join_state_size: int | None = 100,
    per_node_delay: float | None = None,
    diagram_factory: Callable[[str, Sequence[str], str], QueryDiagram] | None = None,
    seed: int | None = None,
    filtered_routing: bool = True,
) -> Cluster:
    """Build an arbitrary replicated-DAG deployment.

    The builder walks ``topology`` in topological order:

    * every source stream gets one logging :class:`DataSource` (the aggregate
      rate is split evenly across them);
    * every node spec becomes a replica group.  *Entry* nodes (all inputs are
      source streams) run the Figure 12 fragment (``diagram_factory`` or an
      SUnion + optional SJoin + SOutput); internal nodes with several inputs
      run a cross-node fan-in fragment (one SUnion merging every upstream
      output stream); single-input internal nodes run relay fragments;
    * every output stream is multicast to all of its downstream subscribers
      (fan-out rides the existing ``send_many`` transport), and each
      downstream replica group registers every upstream replica as a
      switchable producer of that input stream;
    * every sink node feeds one measuring :class:`ClientApplication` (the
      first is named ``client``, further sinks ``client2``, ``client3``, ...).

    ``per_node_delay`` overrides the delay budget D of every node; when
    omitted, per-node budgets come from the Section 6.3 delay planner over
    the deployment graph (UNIFORM divides X by the longest path).

    ``seed`` makes the deployment's randomness explicit and reproducible: it
    seeds every consistency manager's tie-breaking RNG and staggers the
    sources' start times by a seed-derived fraction of a batch interval, so
    two clusters built with the same seed behave identically and different
    seeds produce measurably different (but statistically equivalent) runs.
    ``seed=None`` keeps the exact unjittered timing of the default deployment.

    This function is now a thin shim over the layered control plane: it
    compiles the topology into a :class:`~repro.deploy.Placement` and deploys
    it (``repro.deploy.compile(...).deploy(...)``), returning the deployment's
    cluster.  Callers that want the live reconfiguration surface (filtered
    subscription handles, ``apply(RebalancePlan)``) should use the
    :mod:`repro.deploy` API directly -- or reach it through
    ``cluster.deployment``.

    ``filtered_routing`` selects the data path for ingress-select consumers
    (the shard fragments): ``True`` evaluates their slice predicate at the
    producer (filtered subscriptions), ``False`` keeps the legacy multicast +
    ingress-Filter placement.
    """
    from ..deploy import compile as compile_topology

    placement = compile_topology(
        topology, replicas_per_node=replicas_per_node, filtered_routing=filtered_routing
    )
    deployment = placement.deploy(
        config,
        sim_config,
        aggregate_rate=aggregate_rate,
        payload_factory=payload_factory,
        join_state_size=join_state_size,
        per_node_delay=per_node_delay,
        diagram_factory=diagram_factory,
        seed=seed,
    )
    return deployment.cluster


def build_chain_cluster(
    chain_depth: int = 1,
    replicas_per_node: int = 2,
    n_input_streams: int = 3,
    aggregate_rate: float = 300.0,
    config: DPCConfig | None = None,
    sim_config: SimulationConfig | None = None,
    payload_factory: PayloadFactory = default_payload_factory,
    join_state_size: int | None = 100,
    per_node_delay: float | None = None,
    diagram_factory: Callable[[str, Sequence[str], str], QueryDiagram] | None = None,
    seed: int | None = None,
    filtered_routing: bool = True,
) -> Cluster:
    """Build the replicated chain deployment of Figure 14.

    ``chain_depth`` = 1 with ``replicas_per_node`` = 2 gives the single
    replicated-node setup of Figure 12; ``replicas_per_node`` = 1 gives the
    unreplicated single-node setup of Figure 10.  The chain is sugar: it
    compiles to a path :class:`~repro.topology.Topology` and is wired by
    :func:`build_dag_cluster`.

    ``per_node_delay`` overrides the delay budget D assigned to every node;
    when omitted it is derived from the Section 6.3 delay planner (UNIFORM
    splits X across the chain, FULL assigns X minus the queuing allowance to
    every node).
    """
    if chain_depth < 1:
        raise ConfigurationError("chain_depth must be >= 1")
    if n_input_streams < 1:
        raise ConfigurationError("n_input_streams must be >= 1")
    return build_dag_cluster(
        Topology.chain(chain_depth, n_input_streams=n_input_streams),
        replicas_per_node=replicas_per_node,
        aggregate_rate=aggregate_rate,
        config=config,
        sim_config=sim_config,
        payload_factory=payload_factory,
        join_state_size=join_state_size,
        per_node_delay=per_node_delay,
        diagram_factory=diagram_factory,
        seed=seed,
        filtered_routing=filtered_routing,
    )


def build_single_node_cluster(
    n_input_streams: int = 3,
    aggregate_rate: float = 300.0,
    replicated: bool = False,
    config: DPCConfig | None = None,
    sim_config: SimulationConfig | None = None,
    join_state_size: int | None = None,
    payload_factory: PayloadFactory = default_payload_factory,
) -> Cluster:
    """Single processing node (Figure 10 without replica, Figure 12 with)."""
    return build_chain_cluster(
        chain_depth=1,
        replicas_per_node=2 if replicated else 1,
        n_input_streams=n_input_streams,
        aggregate_rate=aggregate_rate,
        config=config,
        sim_config=sim_config,
        join_state_size=join_state_size,
        payload_factory=payload_factory,
    )
