"""Data sources.

A :class:`DataSource` stands in for the paper's instrumented data sources
(network monitors, sensors, ...).  Per the DPC assumptions (Section 2.2) a
source:

* timestamps every tuple it produces (``stime`` = production time on the
  simulator clock);
* logs every tuple persistently *before* transmitting it, so that after any
  failure the missing suffix can be replayed;
* sends its stream to **all replicas** of the processing node(s) that consume
  it;
* emits periodic boundary tuples that act as punctuation and heartbeat.

Failures used by the experiments map onto two switches: ``disconnect(target)``
(the stream stops reaching one consumer; production and logging continue) and
``set_boundaries_enabled(False)`` (data flows but buckets can no longer
stabilize downstream).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from ..core.protocol import DATA, SOURCE_RESUBSCRIBE, SourceResubscribe, TupleBatch
from ..errors import SimulationError
from ..spe.streams import StreamLog, StreamWriter
from ..spe.tuples import StreamTuple
from ..core.clock import Clock
from .events import EventKind
from .network import Network

#: Generates the payload of the ``i``-th tuple, given its stime.
PayloadGenerator = Callable[[int, float], Mapping[str, Any]]

#: Network message kind used for stream data (alias of the DPC protocol kind).
DATA_MESSAGE = DATA


def sequential_payload(sequence: int, stime: float) -> dict[str, Any]:
    """Default workload: monotonically increasing sequence numbers."""
    return {"seq": sequence, "value": float(sequence)}


class DataSource:
    """A source producing one stream at a fixed rate."""

    def __init__(
        self,
        name: str,
        stream: str,
        simulator: Clock,
        network: Network,
        rate: float = 100.0,
        boundary_interval: float = 0.1,
        batch_interval: float = 0.05,
        payload: PayloadGenerator = sequential_payload,
        start_time: float = 0.0,
        stop_time: float | None = None,
        rate_profile: Callable[[float], float] | None = None,
    ) -> None:
        if rate <= 0:
            raise SimulationError(f"source rate must be positive, got {rate}")
        if boundary_interval <= 0 or batch_interval <= 0:
            raise SimulationError("boundary_interval and batch_interval must be positive")
        self.name = name
        self.stream = stream
        self.simulator = simulator
        self.network = network
        self.rate = rate
        self.boundary_interval = boundary_interval
        self.batch_interval = batch_interval
        self.payload = payload
        self.start_time = start_time
        self.stop_time = stop_time
        #: Optional multiplier of ``rate`` as a pure function of the emission
        #: stime (see :data:`repro.workloads.generators.RateProfile`).  Being
        #: a function of the stime -- not of wall progress -- keeps sources
        #: sharing a profile aligned, so stime tie groups are preserved.
        self.rate_profile = rate_profile
        #: Persistent log of everything ever produced on this stream.
        self.log = StreamLog(stream_name=stream)
        self._writer = StreamWriter(stream_name=stream)
        self._sequence = 0
        self._next_tuple_time = start_time
        self._next_boundary_time = start_time + boundary_interval
        self._boundaries_enabled = True
        #: subscriber endpoint -> last tuple_id delivered (on this source's log).
        self._subscribers: dict[str, int] = {}
        self._connected: dict[str, bool] = {}
        #: subscriber endpoint -> last tuple_id covered by a durable recovery
        #: checkpoint at that subscriber; the log prefix every subscriber has
        #: checkpointed is truncated (bounded retention).
        self._checkpoint_acks: dict[str, int] = {}
        #: Subscribers owed a replay-flagged batch once their link heals
        #: (their cursor was repositioned while they were disconnected).
        self._pending_replay: set[str] = set()
        self._started = False
        # Addressable for cursor-repositioning requests from recovering nodes.
        network.register(self.name, self._on_message)

    # ------------------------------------------------------------------ messages
    def _on_message(self, message, now: float) -> None:
        if message.kind == SOURCE_RESUBSCRIBE:
            self._on_resubscribe(message.payload)

    def _on_resubscribe(self, request: SourceResubscribe) -> None:
        """Reposition one subscriber's cursor and replay the suffix after it.

        Used by checkpoint-shipped recovery: the adopted checkpoint's input
        cursor supersedes whatever delivery position this source froze when
        the subscriber crashed.  The response batch is flagged ``replay`` --
        and sent even when empty -- so the subscriber can discard any
        stale-cursor flushes racing it (the link is FIFO, so everything sent
        before this reply predates the cursor reset).  While the subscriber's
        stream is disconnected (an injected failure), only the cursor is
        repositioned; the reply is owed -- and sent -- when the link heals,
        so recovery cannot smuggle data through a failure window.
        """
        if request.subscriber not in self._subscribers:
            return
        self._subscribers[request.subscriber] = request.after_tuple_id
        if not self._connected.get(request.subscriber, False):
            self._pending_replay.add(request.subscriber)
            return
        self._send_replay(request.subscriber)

    def _send_replay(self, endpoint: str) -> None:
        pending = self.log.replay_after(self._subscribers[endpoint])
        sent = self.network.send(
            self.name,
            endpoint,
            DATA_MESSAGE,
            TupleBatch.of(self.stream, pending, producer=self.name, replay=True),
        )
        if sent and pending:
            self._subscribers[endpoint] = pending[-1].tuple_id

    # ------------------------------------------------------------------ subscriptions
    def subscribe(self, endpoint: str) -> None:
        """Register a consumer; it receives every tuple from the log start."""
        if endpoint in self._subscribers:
            return
        self._subscribers[endpoint] = -1
        self._connected[endpoint] = True

    def disconnect(self, endpoint: str) -> None:
        """Stop delivering to ``endpoint``; production and logging continue."""
        if endpoint not in self._subscribers:
            raise SimulationError(f"{endpoint!r} is not subscribed to {self.name!r}")
        self._connected[endpoint] = False

    def reconnect(self, endpoint: str) -> None:
        """Resume delivery; the missed suffix is replayed on the next flush."""
        if endpoint not in self._subscribers:
            raise SimulationError(f"{endpoint!r} is not subscribed to {self.name!r}")
        self._connected[endpoint] = True
        self._flush_pending_replay(endpoint)

    def disconnect_all(self) -> None:
        for endpoint in self._subscribers:
            self._connected[endpoint] = False

    def reconnect_all(self) -> None:
        for endpoint in self._subscribers:
            self._connected[endpoint] = True
        for endpoint in list(self._pending_replay):
            self._flush_pending_replay(endpoint)

    def _flush_pending_replay(self, endpoint: str) -> None:
        """Send the replay-flagged batch owed from a resubscribe made mid-failure."""
        if endpoint in self._pending_replay:
            self._pending_replay.discard(endpoint)
            self._send_replay(endpoint)

    def is_connected(self, endpoint: str) -> bool:
        return self._connected.get(endpoint, False)

    # ------------------------------------------------------------------ boundary control
    def set_boundaries_enabled(self, enabled: bool) -> None:
        """Enable or disable boundary-tuple production (failure injection hook)."""
        self._boundaries_enabled = enabled
        if enabled:
            # Never emit a boundary for a time window we were silent about in
            # the past; resume from "now".
            self._next_boundary_time = max(self._next_boundary_time, self.simulator.now)

    @property
    def boundaries_enabled(self) -> bool:
        return self._boundaries_enabled

    # ------------------------------------------------------------------ production
    def start(self) -> None:
        """Begin producing tuples on the simulator."""
        if self._started:
            return
        self._started = True
        self.simulator.schedule_at(
            max(self.start_time, self.simulator.now),
            self._tick,
            kind=EventKind.SOURCE,
            description=f"source {self.name} first tick",
        )

    def _stopped(self, now: float) -> bool:
        return self.stop_time is not None and now >= self.stop_time

    def _tick(self, now: float) -> None:
        # Clamp production at stop_time: the set of tuples ever produced is
        # then a pure function of (start_time, rate, stop_time), independent
        # of where the final tick lands.  The simulator's grid-aligned ticks
        # and the live backend's jittered wall-clock ticks produce the exact
        # same finite log, which the live/sim parity harness relies on.
        horizon = now if self.stop_time is None else min(now, self.stop_time)
        self._produce_until(horizon)
        self._flush()
        if not self._stopped(now):
            self.simulator.schedule_at(
                now + self.batch_interval,
                self._tick,
                kind=EventKind.SOURCE,
                description=f"source {self.name} tick",
            )

    def _produce_until(self, now: float) -> None:
        """Generate data and boundary tuples with stimes up to ``now``.

        The loop state and collaborator methods are hoisted into locals: at
        high rates this loop constructs most of the tuples in a run.  The
        payload mapping is materialized exactly once per tuple (``dict`` of
        whatever the generator returns, which may be a reused mapping) and
        attached without a second defensive copy.
        """
        period = 1.0 / self.rate
        rate_profile = self.rate_profile
        writer = self._writer
        log_append = self.log.append
        payload = self.payload
        boundaries_enabled = self._boundaries_enabled
        boundary_interval = self.boundary_interval
        next_tuple_time = self._next_tuple_time
        next_boundary_time = self._next_boundary_time
        sequence = self._sequence
        while next_tuple_time <= now or (boundaries_enabled and next_boundary_time <= now):
            if (
                boundaries_enabled
                and next_boundary_time <= next_tuple_time
                and next_boundary_time <= now
            ):
                log_append(writer.boundary(next_boundary_time))
                next_boundary_time += boundary_interval
                continue
            if next_tuple_time <= now:
                values = dict(payload(sequence, next_tuple_time))
                log_append(writer.data(next_tuple_time, values, True))
                sequence += 1
                if rate_profile is None:
                    next_tuple_time += period
                else:
                    factor = rate_profile(next_tuple_time)
                    if factor <= 0:
                        raise SimulationError(
                            f"rate profile of source {self.name!r} returned "
                            f"{factor!r} at stime {next_tuple_time}; factors must be positive"
                        )
                    next_tuple_time += period / factor
                continue
            break
        self._next_tuple_time = next_tuple_time
        self._next_boundary_time = next_boundary_time
        self._sequence = sequence

    def _flush(self) -> None:
        """Deliver the pending suffix of the log to every connected subscriber.

        Subscribers that are caught up to the same log position share a single
        multicast batch, so the steady-state cost is one simulator event per
        tick regardless of how many replicas consume the stream.
        """
        groups: dict[int, list[str]] = {}
        for endpoint, last_id in self._subscribers.items():
            if self._connected[endpoint]:
                groups.setdefault(last_id, []).append(endpoint)
        for last_id, endpoints in sorted(groups.items()):
            pending = self.log.replay_after(last_id)
            if not pending:
                continue
            sent = self.network.send_many(
                self.name,
                endpoints,
                DATA_MESSAGE,
                TupleBatch.of(self.stream, pending, producer=self.name),
            )
            for endpoint in sent:
                self._subscribers[endpoint] = pending[-1].tuple_id

    # ------------------------------------------------------------------ checkpoint retention
    def acknowledge_checkpoint(self, endpoint: str, tuple_id: int) -> int:
        """Record that ``endpoint`` durably checkpointed through ``tuple_id``.

        The log prefix that *every* subscriber has acknowledged is truncated
        (subscribers that never acknowledged pin the log at its start), so
        retained-log memory is bounded by the checkpoint cadence instead of
        growing for the whole run.  Returns the number of entries truncated.
        """
        if endpoint not in self._subscribers:
            return 0
        acks = self._checkpoint_acks
        acks[endpoint] = max(acks.get(endpoint, -1), tuple_id)
        safe = min(acks.get(ep, -1) for ep in self._subscribers)
        if safe < 0:
            return 0
        return self.log.truncate_through(safe)

    def cursor_of(self, endpoint: str) -> int:
        """Last tuple id delivered to ``endpoint`` (-1 when never delivered)."""
        return self._subscribers.get(endpoint, -1)

    # ------------------------------------------------------------------ introspection
    @property
    def tuples_produced(self) -> int:
        """Number of data tuples generated so far."""
        return self._sequence

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DataSource {self.name!r} stream={self.stream!r} rate={self.rate}>"
