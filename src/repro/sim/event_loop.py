"""Deterministic discrete-event simulator.

The paper evaluates DPC on a cluster of real machines; this reproduction
substitutes a virtual-time simulator (see DESIGN.md, Substitutions).  The
simulator owns a priority queue of :class:`~repro.sim.events.Event` objects
and advances a virtual clock from event to event.  All protocol components --
nodes, data sources, clients, the failure injector -- schedule their work
through it, so a whole distributed scenario is a single-threaded, perfectly
reproducible program.
"""

from __future__ import annotations

import heapq
from typing import Callable

from ..errors import SimulationError
from .events import Event, EventCallback, EventKind


class Simulator:
    """Virtual clock plus event queue."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: list[Event] = []
        self._running = False
        #: Number of events executed so far (for diagnostics and tests).
        self.events_fired = 0

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current simulation time in (virtual) seconds."""
        return self._now

    # ------------------------------------------------------------------ scheduling
    def schedule_at(
        self,
        time: float,
        callback: EventCallback,
        kind: EventKind = EventKind.INTERNAL,
        description: str = "",
    ) -> Event:
        """Schedule ``callback`` to fire at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f}, current time is {self._now:.6f}"
            )
        event = Event.at(time, callback, kind, description)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(
        self,
        delay: float,
        callback: EventCallback,
        kind: EventKind = EventKind.INTERNAL,
        description: str = "",
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, kind, description)

    def schedule_periodic(
        self,
        period: float,
        callback: EventCallback,
        kind: EventKind = EventKind.TIMER,
        description: str = "",
        start_delay: float | None = None,
        stop_condition: Callable[[], bool] | None = None,
    ) -> Event:
        """Schedule ``callback`` every ``period`` seconds until ``stop_condition``.

        Returns the first scheduled event; cancelling it stops the chain the
        next time it comes due.
        """
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        first_delay = period if start_delay is None else start_delay

        def wrapper(now: float, _self_ref: list | None = None) -> None:
            if stop_condition is not None and stop_condition():
                return
            callback(now)
            next_event = self.schedule_at(now + period, wrapper, kind, description)
            holder[0] = next_event

        holder: list[Event] = []
        first = self.schedule_in(first_delay, wrapper, kind, description)
        holder.append(first)
        return first

    # ------------------------------------------------------------------ running
    def run_until(self, end_time: float, max_events: int | None = None) -> float:
        """Run events until the queue is empty or the clock reaches ``end_time``.

        Returns the simulation time at which execution stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        fired = 0
        try:
            while self._queue:
                event = self._queue[0]
                if event.time > end_time:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time
                event.fire()
                self.events_fired += 1
                fired += 1
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; possible event storm"
                    )
            self._now = max(self._now, end_time)
        finally:
            self._running = False
        return self._now

    def run_for(self, duration: float, max_events: int | None = None) -> float:
        """Run for ``duration`` simulated seconds from the current time."""
        return self.run_until(self._now + duration, max_events=max_events)

    def step(self) -> bool:
        """Fire the single next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.fire()
            self.events_fired += 1
            return True
        return False

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return sum(1 for e in self._queue if not e.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self._now:.3f} pending={self.pending_events}>"
