"""Deterministic discrete-event simulator.

The paper evaluates DPC on a cluster of real machines; this reproduction
substitutes a virtual-time simulator (see DESIGN.md, Substitutions).  The
simulator owns a priority queue of :class:`~repro.sim.events.Event` objects
and advances a virtual clock from event to event.  All protocol components --
nodes, data sources, clients, the failure injector -- schedule their work
through it, so a whole distributed scenario is a single-threaded, perfectly
reproducible program.
"""

from __future__ import annotations

import heapq
from typing import Callable

from ..errors import SimulationError
from .events import Event, EventCallback, EventKind


class PeriodicHandle:
    """Handle for a periodic event chain; cancelling it stops the chain."""

    def __init__(self, simulator: "Simulator") -> None:
        self._simulator = simulator
        self._current: Event | None = None
        self.cancelled = False

    def _advance(self, event: Event) -> None:
        self._current = event

    def cancel(self) -> None:
        """Stop the chain; the pending occurrence is removed from the queue."""
        self.cancelled = True
        if self._current is not None:
            self._simulator.cancel(self._current)
            self._current = None


class Simulator:
    """Virtual clock plus event queue."""

    #: Compact the heap when more than this many cancelled events linger and
    #: they outnumber the live ones (keeps cancellation amortized O(log n)).
    _COMPACT_THRESHOLD = 64

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: list[Event] = []
        self._running = False
        self._cancelled_pending = 0
        #: Number of events executed so far (for diagnostics and tests).
        self.events_fired = 0

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current simulation time in (virtual) seconds."""
        return self._now

    # ------------------------------------------------------------------ scheduling
    def schedule_at(
        self,
        time: float,
        callback: EventCallback,
        kind: EventKind = EventKind.INTERNAL,
        description: str = "",
    ) -> Event:
        """Schedule ``callback`` to fire at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f}, current time is {self._now:.6f}"
            )
        event = Event.at(time, callback, kind, description)
        heapq.heappush(self._queue, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (lazy heap deletion, amortized O(log n)).

        The event is marked and skipped when it comes due; when cancelled
        events accumulate, the queue is compacted so that failure-injection
        and timer-reset paths never leave the heap full of dead entries.
        """
        if event.cancelled or event.fired:
            return  # already skipped, or already executed and left the queue
        event.cancel()
        event.counted = True
        self._cancelled_pending += 1
        if (
            self._cancelled_pending > self._COMPACT_THRESHOLD
            and self._cancelled_pending * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_pending = 0

    def schedule_in(
        self,
        delay: float,
        callback: EventCallback,
        kind: EventKind = EventKind.INTERNAL,
        description: str = "",
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, kind, description)

    def schedule_periodic(
        self,
        period: float,
        callback: EventCallback,
        kind: EventKind = EventKind.TIMER,
        description: str = "",
        start_delay: float | None = None,
        stop_condition: Callable[[], bool] | None = None,
    ) -> PeriodicHandle:
        """Schedule ``callback`` every ``period`` seconds until ``stop_condition``.

        Returns a :class:`PeriodicHandle`; cancelling it removes the pending
        occurrence from the queue and stops the chain.
        """
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        first_delay = period if start_delay is None else start_delay
        handle = PeriodicHandle(self)

        def wrapper(now: float) -> None:
            if handle.cancelled:
                return
            if stop_condition is not None and stop_condition():
                return
            callback(now)
            if not handle.cancelled:
                handle._advance(self.schedule_at(now + period, wrapper, kind, description))

        handle._advance(self.schedule_in(first_delay, wrapper, kind, description))
        return handle

    # ------------------------------------------------------------------ running
    def run_until(self, end_time: float, max_events: int | None = None) -> float:
        """Run events until the queue is empty or the clock reaches ``end_time``.

        Returns the simulation time at which execution stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        fired = 0
        try:
            while self._queue:
                event = self._queue[0]
                if event.time > end_time:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    if event.counted:
                        self._cancelled_pending -= 1
                    continue
                self._now = event.time
                event.fire()
                self.events_fired += 1
                fired += 1
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; possible event storm"
                    )
            self._now = max(self._now, end_time)
        finally:
            self._running = False
        return self._now

    def run_for(self, duration: float, max_events: int | None = None) -> float:
        """Run for ``duration`` simulated seconds from the current time."""
        return self.run_until(self._now + duration, max_events=max_events)

    def step(self) -> bool:
        """Fire the single next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                if event.counted:
                    self._cancelled_pending -= 1
                continue
            self._now = event.time
            event.fire()
            self.events_fired += 1
            return True
        return False

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return sum(1 for e in self._queue if not e.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self._now:.3f} pending={self.pending_events}>"
