"""Discrete-event distributed substrate (simulator, network, sources, clients)."""

from .events import Event, EventKind
from .event_loop import Simulator
from .network import Network, Message, NetworkStats
from .failures import FailureInjector, FailureRecord, FailureType
from .sources import DataSource, sequential_payload
from .client import ClientApplication
from .cluster import (
    Cluster,
    build_chain_cluster,
    build_dag_cluster,
    build_single_node_cluster,
    merge_diagram,
    relay_diagram,
)

__all__ = [
    "Event",
    "EventKind",
    "Simulator",
    "Network",
    "Message",
    "NetworkStats",
    "FailureInjector",
    "FailureRecord",
    "FailureType",
    "DataSource",
    "sequential_payload",
    "ClientApplication",
    "Cluster",
    "build_chain_cluster",
    "build_dag_cluster",
    "build_single_node_cluster",
    "merge_diagram",
    "relay_diagram",
]
