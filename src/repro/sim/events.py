"""Event primitives for the discrete-event simulator."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

#: Callback signature: receives the simulation time at which the event fires.
EventCallback = Callable[[float], None]

_event_ids = itertools.count()


class EventKind(str, Enum):
    """Coarse classification used for tracing and statistics."""

    TIMER = "timer"
    MESSAGE = "message"
    FAILURE = "failure"
    RECOVERY = "recovery"
    SOURCE = "source"
    INTERNAL = "internal"


@dataclass(order=True)
class Event:
    """One scheduled callback.

    Events are ordered by ``(time, sequence)`` so that events scheduled for
    the same instant fire in scheduling order, which keeps runs deterministic.
    """

    time: float
    sequence: int = field(compare=True)
    callback: EventCallback = field(compare=False)
    kind: EventKind = field(compare=False, default=EventKind.INTERNAL)
    description: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    fired: bool = field(compare=False, default=False)
    #: True when Simulator.cancel counted this event toward heap compaction
    #: (distinguishes it from events cancelled directly via Event.cancel).
    counted: bool = field(compare=False, default=False)

    @classmethod
    def at(
        cls,
        time: float,
        callback: EventCallback,
        kind: EventKind = EventKind.INTERNAL,
        description: str = "",
    ) -> "Event":
        return cls(
            time=time,
            sequence=next(_event_ids),
            callback=callback,
            kind=kind,
            description=description,
        )

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when it comes due."""
        self.cancelled = True

    def fire(self) -> None:
        self.fired = True
        if not self.cancelled:
            self.callback(self.time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.3f} {self.kind.value} {self.description!r}{flag}>"
