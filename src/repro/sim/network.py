"""Simulated network: reliable, in-order links with partitions and crashes.

The paper assumes replicas communicate over a reliable in-order protocol like
TCP (Section 2.2).  The :class:`Network` honors that assumption for every
message it *delivers*: messages between a pair of endpoints are delivered in
the order they were sent.  Failures are modelled the way they appear to DPC:

* a **network partition** between two endpoints silently discards messages in
  both directions until it heals (what a peer observes is missing heartbeats
  and missing data -- exactly what it would observe with a long TCP outage);
* a **crashed endpoint** receives nothing and sends nothing until it recovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..errors import NetworkError
from .event_loop import Simulator
from .events import EventKind

#: Endpoint handlers receive (message, delivery_time).
MessageHandler = Callable[["Message", float], None]


@dataclass(frozen=True)
class Message:
    """One message in flight between two endpoints."""

    sender: str
    receiver: str
    kind: str
    payload: Any
    sent_at: float


@dataclass
class NetworkStats:
    """Counters exposed for tests and overhead experiments."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    by_kind: dict = field(default_factory=dict)

    def record(self, kind: str, outcome: str) -> None:
        self.by_kind.setdefault(kind, {"sent": 0, "delivered": 0, "dropped": 0})
        self.by_kind[kind][outcome] += 1


class Network:
    """Message fabric connecting every simulated component."""

    def __init__(self, simulator: Simulator, default_latency: float = 0.005) -> None:
        if default_latency < 0:
            raise NetworkError("latency cannot be negative")
        self.simulator = simulator
        self.default_latency = default_latency
        self._handlers: dict[str, MessageHandler] = {}
        self._link_latency: dict[tuple[str, str], float] = {}
        self._partitioned: set[frozenset[str]] = set()
        self._down: set[str] = set()
        self._last_delivery: dict[tuple[str, str], float] = {}
        self.stats = NetworkStats()

    # ------------------------------------------------------------------ topology
    def register(self, name: str, handler: MessageHandler) -> None:
        """Attach an endpoint; messages to ``name`` invoke ``handler``."""
        if name in self._handlers:
            raise NetworkError(f"endpoint {name!r} already registered")
        self._handlers[name] = handler

    def unregister(self, name: str) -> None:
        self._handlers.pop(name, None)

    def endpoints(self) -> list[str]:
        return sorted(self._handlers)

    def set_link_latency(self, sender: str, receiver: str, latency: float) -> None:
        """Override the latency of the directed link ``sender -> receiver``."""
        if latency < 0:
            raise NetworkError("latency cannot be negative")
        self._link_latency[(sender, receiver)] = latency

    def latency(self, sender: str, receiver: str) -> float:
        return self._link_latency.get((sender, receiver), self.default_latency)

    # ------------------------------------------------------------------ failures
    def partition(self, a: str, b: str) -> None:
        """Disconnect ``a`` and ``b`` in both directions."""
        self._partitioned.add(frozenset((a, b)))

    def heal_partition(self, a: str, b: str) -> None:
        self._partitioned.discard(frozenset((a, b)))

    def crash(self, name: str) -> None:
        """Take ``name`` down: it neither sends nor receives until recovery."""
        self._down.add(name)

    def recover(self, name: str) -> None:
        self._down.discard(name)

    def is_partitioned(self, a: str, b: str) -> bool:
        return frozenset((a, b)) in self._partitioned

    def is_down(self, name: str) -> bool:
        return name in self._down

    def can_communicate(self, sender: str, receiver: str) -> bool:
        """True when a message sent now from ``sender`` would reach ``receiver``."""
        if sender in self._down or receiver in self._down:
            return False
        return not self.is_partitioned(sender, receiver)

    # ------------------------------------------------------------------ messaging
    def send(self, sender: str, receiver: str, kind: str, payload: Any) -> bool:
        """Send a message; returns True when it was put on the wire.

        Messages to unknown endpoints raise; messages across a partition or
        involving a crashed endpoint are silently dropped (that is what the
        receiver observes), though they are counted in :attr:`stats`.
        """
        return bool(self.send_many(sender, (receiver,), kind, payload))

    def send_many(self, sender: str, receivers: Sequence[str], kind: str, payload: Any) -> list[str]:
        """Multicast ``payload`` to several receivers with coalesced delivery.

        All deliveries that come due at the same instant share a single
        scheduled event (the batched tuple transport: one event carries the
        payload to every receiver of that instant), while per-link FIFO order
        and per-receiver failure semantics are identical to point-to-point
        :meth:`send`.  Returns the receivers whose message was put on the
        wire (a receiver is missing from the result when it was unreachable
        at send time).
        """
        for receiver in receivers:
            if receiver not in self._handlers:
                raise NetworkError(f"unknown endpoint {receiver!r}")
        now = self.simulator.now
        on_the_wire: list[str] = []
        by_instant: dict[float, list[Message]] = {}
        for receiver in receivers:
            self.stats.sent += 1
            self.stats.record(kind, "sent")
            if not self.can_communicate(sender, receiver):
                self.stats.dropped += 1
                self.stats.record(kind, "dropped")
                continue
            message = Message(
                sender=sender, receiver=receiver, kind=kind, payload=payload, sent_at=now
            )
            # Preserve per-link FIFO order even if latencies were reconfigured.
            deliver_at = max(
                now + self.latency(sender, receiver),
                self._last_delivery.get((sender, receiver), 0.0),
            )
            self._last_delivery[(sender, receiver)] = deliver_at
            by_instant.setdefault(deliver_at, []).append(message)
            on_the_wire.append(receiver)

        for deliver_at, messages in by_instant.items():
            self.simulator.schedule_at(
                deliver_at,
                lambda t, batch=messages: self._deliver(batch, t),
                kind=EventKind.MESSAGE,
                description=f"{sender}->{len(messages)} receivers:{kind}"
                if len(messages) > 1
                else f"{sender}->{messages[0].receiver}:{kind}",
            )
        return on_the_wire

    def _deliver(self, messages: list[Message], now: float) -> None:
        for message in messages:
            # An endpoint may have crashed while the message was in flight; a
            # crash drops the message (the crashed node's state is wiped and
            # recovery resubscribes/replays, so delivering would be wrong).  A
            # partition that appeared mid-flight does NOT drop it: the message
            # was credited to the sender at send time, and on a reliable
            # in-order link a credited message is delivered -- dropping it
            # here would silently lose data that nothing ever replays.
            if self.is_down(message.sender) or self.is_down(message.receiver):
                self.stats.dropped += 1
                self.stats.record(message.kind, "dropped")
                continue
            handler = self._handlers.get(message.receiver)
            if handler is None:
                self.stats.dropped += 1
                self.stats.record(message.kind, "dropped")
                continue
            self.stats.delivered += 1
            self.stats.record(message.kind, "delivered")
            handler(message, now)

    def broadcast(self, sender: str, receivers: list[str], kind: str, payload: Any) -> int:
        """Send the same payload to several receivers; returns how many were sent."""
        return len(self.send_many(sender, receivers, kind, payload))
