#!/usr/bin/env python
"""Sensor-based environment monitoring across a chain of processing nodes.

The paper's second motivating application: building/pipeline sensors feed a
distributed SPE; when part of the sensor network disconnects, the system keeps
producing (tentative) air-quality alerts from the sensors that remain, and
corrects them once the disconnection heals -- technicians dispatched on
tentative alerts can be re-assigned quickly when the stable results arrive.

This example uses a two-node chain (aggregation close to the sensors, alerting
closer to the operations center), each node replicated, and compares two
configurations of the availability/consistency trade-off: eager processing
(Process & Process) versus maximal delaying (Delay & Delay).

Run with::

    python examples/sensor_monitoring.py
"""

from repro import DelayPolicy, DPCConfig, ScenarioSpec
from repro.workloads.generators import sensor_readings


def run(policy: DelayPolicy) -> dict:
    spec = ScenarioSpec.chain(
        2,  # aggregation close to the sensors, alerting at the operations center
        name=f"sensor-monitoring-{policy.name}",
        replicas_per_node=2,
        n_input_streams=3,
        aggregate_rate=150.0,
        join_state_size=None,
        config=DPCConfig(
            max_incremental_latency=4.0,  # the operations center tolerates 4 s end-to-end
            delay_policy=policy,
        ),
        payload_factory=lambda index, total: sensor_readings(index, total, seed=3),
        warmup=8.0,
        settle=30.0,
    ).with_failure(
        # One sensor gateway stops sending heartbeats (boundary tuples) for 12 s.
        "silence",
        start=8.0,
        duration=12.0,
        stream_index=0,
    )
    runtime = spec.run()
    client = runtime.client
    return {
        "policy": policy.name,
        "proc_new": client.proc_new,
        "tentative": client.n_tentative,
        "stable": client.metrics.consistency.total_stable,
        "consistent": runtime.eventually_consistent(),
    }


def main() -> None:
    print("sensor monitoring: 2-node replicated chain, 12 s gateway outage\n")
    print(f"{'policy':<22} {'Proc_new':>9} {'tentative':>10} {'stable':>8} {'consistent':>11}")
    for policy in (DelayPolicy.process_process(), DelayPolicy.delay_delay()):
        result = run(policy)
        print(
            f"{result['policy']:<22} {result['proc_new']:>8.2f}s {result['tentative']:>10d} "
            f"{result['stable']:>8d} {str(result['consistent']):>11}"
        )
    print(
        "\nDelay & Delay trades a higher (but still bounded) latency for fewer"
        " tentative alerts; both configurations converge to the same stable output."
    )


if __name__ == "__main__":
    main()
