#!/usr/bin/env python
"""Live rebalance: compile -> place -> deploy, then re-shard a running system.

This example walks the full `repro.deploy` control plane instead of the
one-shot scenario sugar:

1. **compile** -- ``deploy.compile(Topology.shard(4, ...))`` produces a
   :class:`~repro.deploy.Placement`: a pure plan of sources, replica groups,
   fragment shapes, and the four *filtered subscriptions* through which the
   split router sends each shard fragment only its key-hash slice;
2. **deploy** -- ``placement.deploy(...)`` materializes the plan and returns
   a live :class:`~repro.deploy.Deployment` handle;
3. **observe** -- the workload is a zipfian hot-key stream, so the split's
   observed per-bucket loads skew far beyond tolerance;
4. **apply** -- ``deployment.apply(plan)`` performs the bucket handoff on
   the *running* deployment: every shard's subscription filter is advanced
   to the new predicate at the next bucket boundary of the serialization
   time axis (routing stays a pure function of each tuple, so nothing is
   lost or duplicated), and once the boundary drains, the moved buckets'
   SJoin state ships from the old owners to the new ones through the
   checkpoint containers;
5. **verify** -- the merged client ledger is gap-free, duplicate-free, and
   ordered across the handoff, and the shard imbalance has dropped.

Run with::

    python examples/live_rebalance.py
"""

from repro import deploy
from repro.topology import Topology
from repro.workloads.generators import hot_key_payload_factory

SHARDS = 4
RATE = 150.0  # aggregate tuples per simulated second
OBSERVE_FOR = 20.0  # skew-observation window before the rebalance
SETTLE_FOR = 20.0  # run time after the handoff
SKEW = 1.2


def main() -> None:
    # --- 1. compile: a pure, inspectable plan --------------------------------
    topology = Topology.shard(SHARDS, key="key", tie_group=1)
    placement = deploy.compile(topology, replicas_per_node=2)
    print(f"placement: {placement!r}")
    for edge in placement.filtered_subscriptions():
        print(f"  filtered subscription: {edge.producer} -> {edge.consumer} "
              f"({edge.filter_name})")
    # Placements are diffable: compare against a multicast compilation.
    multicast = deploy.compile(topology, replicas_per_node=2, filtered_routing=False)
    for line in placement.diff(multicast):
        print(f"  vs multicast: {line}")

    # --- 2. deploy: materialize the plan -------------------------------------
    deployment = placement.deploy(
        aggregate_rate=RATE,
        payload_factory=hot_key_payload_factory(skew=SKEW),
        seed=7,
    )
    deployment.start()
    deployment.run_for(OBSERVE_FOR)

    # --- 3. observe the skew --------------------------------------------------
    loads = deployment.observed_bucket_loads()
    assignment = deployment.current_assignment
    print(f"\nafter {OBSERVE_FOR:g}s of zipf({SKEW}) hot-key load:")
    print(f"  shard loads: {[int(x) for x in assignment.load_by_shard(loads)]}")
    print(f"  peak-to-mean imbalance: {assignment.imbalance(loads):.3f}")

    # --- 4. plan and apply the live rebalance ---------------------------------
    plan = deployment.plan_rebalance(tolerance=0.10)
    print(f"\nplanner: {len(plan.moves)} bucket move(s), "
          f"imbalance {plan.imbalance_before:.3f} -> {plan.imbalance_after:.3f}")
    record = deployment.apply(plan)
    print(f"applied at t={record['applied_at']:g}s, cut at stime {record['cut_stime']:g} "
          f"(the next bucket boundary); state handoff at t={record['state_handoff_at']:g}s")
    deployment.run_for(SETTLE_FOR)
    print(f"join-state tuples shipped: {record['state_tuples_shipped']}")

    # --- 5. verify the ledger survived the handoff ----------------------------
    client = deployment.clients[0]
    sequence = client.stable_sequence
    gap_free = set(range(min(sequence), max(sequence) + 1)) == set(sequence)
    ordered = sequence == sorted(sequence)
    duplicate_free = len(set(sequence)) == len(sequence)
    print(f"\nmerged ledger: {len(sequence)} stable tuples, "
          f"gap-free={gap_free}, duplicate-free={duplicate_free}, ordered={ordered}")
    loads_after = deployment.observed_bucket_loads()
    print(f"imbalance under the new assignment: "
          f"{deployment.current_assignment.imbalance(loads_after):.3f}")
    if not (gap_free and duplicate_free and ordered):
        raise SystemExit("ledger lost or duplicated tuples across the handoff")
    print("\nthe deployment re-sharded itself without dropping or duplicating a tuple")


if __name__ == "__main__":
    main()
