#!/usr/bin/env python
"""Generate a small paper-vs-measured report (the EXPERIMENTS.md machinery).

The repository's ``EXPERIMENTS.md`` records, for every table and figure of
the paper, the claim, the configuration, the measured values, and whether the
qualitative shape holds.  This example shows the machinery on a reduced
Table III sweep: it runs three failure durations, compares them against the
paper's reference row, runs the shape checks, and writes a Markdown report.

Run with::

    python examples/experiment_report.py [output.md]
"""

import sys

from repro.analysis.comparison import availability_checks, check_flat
from repro.analysis.paper import PAPER_TABLE3, paper_claim
from repro.analysis.report import ExperimentReport, ReportSection
from repro.analysis.tables import ResultTable, metric_by_duration
from repro.experiments import table3

DURATIONS = (2.0, 10.0, 30.0)
RATE = 120.0


def main() -> None:
    output_path = sys.argv[1] if len(sys.argv) > 1 else "table3_report.md"

    print(f"running the Table III sweep at {RATE:.0f} tuples/s for {DURATIONS} ...")
    results = table3(DURATIONS, aggregate_rate=RATE)

    section = ReportSection(claim=paper_claim("table3"))
    section.configuration = {
        "aggregate_rate": RATE,
        "X": 3.0,
        "replicas": 2,
        "failure_durations": list(DURATIONS),
    }

    # Paper-vs-measured table.
    comparison = ResultTable(
        title="Proc_new (s), paper vs measured", row_label="failure (s)", column_label="source"
    )
    for result in results:
        comparison.set(result.failure_duration, "paper", PAPER_TABLE3.get(result.failure_duration))
        comparison.set(result.failure_duration, "measured", result.proc_new)
    section.add_table(comparison)
    section.add_table(metric_by_duration(results, "N_tentative", lambda r: r.n_tentative))

    # Shape checks: the bound holds, and latency does not grow with duration.
    section.add_checks(availability_checks(results, bound=3.0))
    unmasked = [r.proc_new for r in results if r.failure_duration > 3.0]
    section.add_check(check_flat("Proc_new flat beyond the masked range", unmasked))
    section.add_note(
        "Measured on the deterministic discrete-event simulator; absolute latencies "
        "track the simulator's cost model, the paper's shape (flat, below the bound) is "
        "what the checks assert."
    )

    report = ExperimentReport(
        title="Table III -- quick reproduction report",
        preamble="Reduced sweep produced by examples/experiment_report.py.",
    )
    report.add_section(section)
    report.write(output_path)

    print(f"\nchecks passed: {all(check.passed for check in section.checks)}")
    for check in section.checks:
        print(f"  {check.row()}")
    print(f"\nwrote {output_path}")


if __name__ == "__main__":
    main()
