#!/usr/bin/env python
"""Capacity planning: delay budgets and buffer sizes for a deployment.

Before deploying a fault-tolerant query diagram, an operator must answer two
questions the paper studies analytically:

* how should the application's end-to-end latency budget ``X`` be divided
  among the SUnions of the deployment (Section 6.3), and
* how much buffer space does each node need so that, after a failure heals,
  the system can correct a chosen window of recent results (Section 8.1)?

This example answers both for the intrusion-detection fragment shipped in
:mod:`repro.workloads.queries`, without running any simulation.

Run with::

    python examples/capacity_planning.py
"""

from repro.config import DelayAssignment
from repro.core import DelayPlanner, classify_diagram, compute_buffer_sizing
from repro.workloads.queries import intrusion_detection_diagram

MONITORS = 3
PER_MONITOR_RATE = 500.0  # connection records per second per monitor
BUDGET = 8.0              # end-to-end incremental latency bound X (seconds)
CORRECTION_WINDOW = 300.0  # want the last 5 minutes of alerts corrected after healing


def main() -> None:
    streams = [f"monitor{i + 1}" for i in range(MONITORS)]
    diagram = intrusion_detection_diagram(
        "ids", streams, "alerts", window=5.0, min_probes=3
    )

    # ----------------------------------------------------------------- convergence analysis
    classification = classify_diagram(diagram)
    print("=== fragment analysis ===")
    print(f"operators: {len(diagram)}   convergent-capable: {classification.is_convergent_capable}")
    print(f"state horizon: {classification.state_horizon:.1f} s "
          "(how far back current state depends on input)")
    for name, operator_class in classification.operators.items():
        print(f"  {name:<20} {operator_class.category.value:<11} horizon={operator_class.horizon:g} s")
    print()

    # ----------------------------------------------------------------- delay planning
    print("=== delay assignment (X = %.0f s, 2-node chain) ===" % BUDGET)
    planner = DelayPlanner.for_chain(2, total_budget=BUDGET)
    for strategy in (DelayAssignment.UNIFORM, DelayAssignment.FULL):
        plan = planner.plan(strategy)
        budgets = ", ".join(f"{node}={delay:g}s" for node, delay in plan.per_node.items())
        print(f"  {strategy.value:>8}: {budgets}  -> masks failures up to {plan.masked_failure:g} s")
    print()

    # ----------------------------------------------------------------- buffer sizing
    sizing = compute_buffer_sizing(
        diagram,
        correction_window=CORRECTION_WINDOW,
        input_rates={stream: PER_MONITOR_RATE for stream in streams},
    )
    print("=== buffer sizing (correct the last %.0f s after healing) ===" % CORRECTION_WINDOW)
    print(f"input buffer span: {sizing.input_span:.1f} s of stime per input stream")
    for stream, tuples in sizing.input_tuples.items():
        print(f"  input  {stream:<10} {tuples:>9,d} tuples")
    for stream, tuples in sizing.output_tuples.items():
        print(f"  output {stream:<10} {tuples:>9,d} tuples")
    policy = sizing.to_buffer_policy()
    print(f"suggested BufferPolicy: max_output={policy.max_output_tuples:,}, "
          f"max_input={policy.max_input_tuples:,}, block_on_full={policy.block_on_full}")
    for note in sizing.notes:
        print(f"note: {note}")


if __name__ == "__main__":
    main()
