#!/usr/bin/env python
"""Quickstart: a replicated processing node surviving an input-stream failure.

This is the smallest end-to-end use of the library's public API:

1. build a simulated deployment (three data sources, one processing node
   replicated on two simulated machines, one client application);
2. inject a 10-second failure on one input stream;
3. run the simulation and print what the client experienced: the maximum
   processing latency of new results (availability), how many tentative
   results it received (inconsistency), and whether the final output is the
   complete, correct stream (eventual consistency).

Run with::

    python examples/quickstart.py
"""

from repro import DPCConfig, build_chain_cluster, single_failure
from repro.experiments import check_eventual_consistency


def main() -> None:
    config = DPCConfig(
        max_incremental_latency=3.0,  # the application tolerates 3 s of extra delay
    )
    cluster = build_chain_cluster(
        chain_depth=1,          # a single processing node ...
        replicas_per_node=2,    # ... replicated on two simulated machines
        n_input_streams=3,
        aggregate_rate=150.0,   # tuples per (simulated) second across all sources
        config=config,
    )

    # Disconnect input stream 1 from the processing nodes for 10 seconds,
    # starting at t = 5 s.  The source keeps producing and replays the missing
    # data once the failure heals.
    scenario = single_failure(kind="disconnect", start=5.0, duration=10.0, settle=30.0)
    scenario.run(cluster)

    client = cluster.client
    print("=== client view ===")
    print(f"maximum latency of new results (Proc_new): {client.proc_new:.2f} s")
    print(f"tentative results received:                {client.n_tentative}")
    print(f"stable results received:                   {client.metrics.consistency.total_stable}")
    print(f"corrections bursts (REC_DONE):             {client.metrics.consistency.total_rec_done}")
    print(f"eventually consistent:                     {check_eventual_consistency(cluster)}")

    print("\n=== node view ===")
    for node in cluster.all_nodes():
        stats = node.statistics()
        print(
            f"{stats['name']:>7}: state={stats['state']:<9} checkpoints={stats['checkpoints']} "
            f"reconciliations={stats['reconciliations']} processed={stats['tuples_processed']}"
        )


if __name__ == "__main__":
    main()
