#!/usr/bin/env python
"""Quickstart: a replicated processing node surviving an input-stream failure.

This is the smallest end-to-end use of the library's public API -- the
declarative :class:`~repro.runtime.ScenarioSpec` scenario layer:

1. describe the deployment (three data sources, one processing node replicated
   on two simulated machines, one client application) and a 10-second failure
   on one input stream as a single ``ScenarioSpec``;
2. compile and run it (``spec.run()`` returns the ``SimulationRuntime`` that
   owns the simulator, cluster, failure injection, and metrics);
3. print what the client experienced: the maximum processing latency of new
   results (availability), how many tentative results it received
   (inconsistency), and whether the final output is the complete, correct
   stream (eventual consistency).

Run with::

    python examples/quickstart.py
"""

from repro import DPCConfig, ScenarioSpec


def main() -> None:
    spec = ScenarioSpec.single_node(
        name="quickstart",
        replicated=True,          # one node on two simulated machines
        n_input_streams=3,
        aggregate_rate=150.0,     # tuples per (simulated) second across all sources
        config=DPCConfig(
            max_incremental_latency=3.0,  # the application tolerates 3 s of extra delay
        ),
        warmup=5.0,
        settle=30.0,
        seed=0,                   # same seed => byte-identical run
    ).with_failure(
        # Disconnect input stream 1 from the processing nodes for 10 seconds,
        # starting at t = 5 s.  The source keeps producing and replays the
        # missing data once the failure heals.
        "disconnect",
        start=5.0,
        duration=10.0,
    )

    runtime = spec.run()

    client = runtime.client
    print("=== client view ===")
    print(f"maximum latency of new results (Proc_new): {client.proc_new:.2f} s")
    print(f"tentative results received:                {client.n_tentative}")
    print(f"stable results received:                   {client.metrics.consistency.total_stable}")
    print(f"corrections bursts (REC_DONE):             {client.metrics.consistency.total_rec_done}")
    print(f"eventually consistent:                     {runtime.eventually_consistent()}")

    print("\n=== node view ===")
    for node in runtime.nodes():
        stats = node.statistics()
        print(
            f"{stats['name']:>7}: state={stats['state']:<9} checkpoints={stats['checkpoints']} "
            f"reconciliations={stats['reconciliations']} processed={stats['tuples_processed']}"
        )


if __name__ == "__main__":
    main()
