#!/usr/bin/env python
"""Fail-stop crash of a processing-node replica, masked by replication.

The availability experiments of the paper fail input streams; this example
exercises the other failure mode DPC handles (Section 4.5): the replica a
client is reading from crashes outright.  The client's consistency manager
stops receiving heartbeat responses, consults the replica set, and switches
to the surviving replica -- which processed the same input all along, so the
output stream continues seamlessly, with no tentative tuples at all.

Run with::

    python examples/crash_failover.py
"""

from repro import DPCConfig, ScenarioSpec
from repro.analysis.traces import analyze_trace, output_gaps

CRASH_START = 5.0
CRASH_DURATION = 15.0


def main() -> None:
    spec = ScenarioSpec.single_node(
        name="crash-failover",
        aggregate_rate=120.0,
        config=DPCConfig(max_incremental_latency=3.0),
        warmup=CRASH_START,
        settle=30.0,
    ).with_failure(
        "crash",
        start=CRASH_START,
        duration=CRASH_DURATION,
        node_level=0,
        node_replica=0,
    )
    runtime = spec.run()
    crashed = runtime.node(0, 0)
    survivor = runtime.node(0, 1)

    client = runtime.client
    analysis = analyze_trace(client.metrics.trace)
    gaps = output_gaps(client.metrics.trace, threshold=0.5)

    print(f"crashed replica:   {crashed.name} (down {CRASH_DURATION:.0f} s, then restarted)")
    print(f"surviving replica: {survivor.name}")
    print()
    print("=== client view ===")
    print(f"upstream switches performed:        {client.cm.switches_performed}")
    print(f"maximum latency of new results:     {client.proc_new:.2f} s (bound: 3 s + processing)")
    print(f"tentative results received:         {client.n_tentative}")
    print(f"gaps > 0.5 s in new data:           {len(gaps)}")
    print(f"eventually consistent:              {runtime.eventually_consistent()}")
    print(f"trace shows a failure episode:      {analysis.had_failure}")
    print()
    print("A crash of one replica is invisible to the application: the other replica")
    print("has the same state (replicas stay mutually consistent in the absence of")
    print("failures), so the switch introduces no inconsistency whatsoever.")


if __name__ == "__main__":
    main()
