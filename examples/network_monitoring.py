#!/usr/bin/env python
"""Network-intrusion monitoring under a monitor outage.

The paper's lead application: several network monitors feed connection records
into a distributed SPE that flags suspicious activity.  When a monitor becomes
unreachable the operators keep processing the remaining feeds (tentative
alerts, low latency); once the outage heals, the missed records are replayed
and the alert stream is corrected (eventual consistency), so the administrator
eventually sees the complete list of incidents.

This example builds its own query diagram through the public SPE API (an
SUnion feeding a Filter for suspicious connections, followed by a windowed
Aggregate counting suspicious connections per source host) and runs it on the
replicated simulated deployment.

Run with::

    python examples/network_monitoring.py
"""

from repro import Aggregate, DPCConfig, Filter, ScenarioSpec, SOutput, SUnion, WindowSpec
from repro.spe.query_diagram import QueryDiagram
from repro.workloads.generators import network_monitoring

N_MONITORS = 3


def intrusion_diagram(node_name, input_streams, output_stream) -> QueryDiagram:
    """SUnion -> Filter(suspicious) -> Aggregate(count per src, 5 s windows) -> SOutput."""
    diagram = QueryDiagram(name=node_name)
    merge = SUnion(f"{node_name}.merge", arity=len(input_streams), bucket_size=0.1)
    suspicious = Filter(f"{node_name}.suspicious", predicate=lambda v: v["suspicious"])
    alerts = Aggregate(
        f"{node_name}.alerts",
        window=WindowSpec.tumbling(5.0),
        aggregates=[("connections", "count", None), ("bytes", "sum", "bytes")],
        group_by=("src",),
    )
    soutput = SOutput(f"{node_name}.soutput")
    for operator in (merge, suspicious, alerts, soutput):
        diagram.add_operator(operator)
    diagram.connect(merge, suspicious)
    diagram.connect(suspicious, alerts)
    diagram.connect(alerts, soutput)
    for port, stream in enumerate(input_streams):
        diagram.bind_input(stream, merge, port)
    diagram.bind_output(output_stream, soutput)
    diagram.validate()
    return diagram


def main() -> None:
    spec = ScenarioSpec.single_node(
        name="network-monitoring",
        n_input_streams=N_MONITORS,
        aggregate_rate=300.0,
        config=DPCConfig(max_incremental_latency=3.0),
        payload_factory=lambda index, total: network_monitoring(index, total, seed=7),
        diagram_factory=intrusion_diagram,
        warmup=10.0,
        settle=30.0,
    ).with_failure(
        # Monitor #2 becomes unreachable for 20 seconds.
        "disconnect",
        start=10.0,
        duration=20.0,
        stream_index=1,
    )
    runtime = spec.run()

    client = runtime.client
    tentative_alerts = [e for e in client.metrics.trace if e.tuple_type == "tentative"]
    stable_alerts = [e for e in client.metrics.trace if e.tuple_type == "insertion"]
    print("=== intrusion alert stream ===")
    print(f"alert windows received (stable):    {len(stable_alerts)}")
    print(f"alert windows received (tentative): {len(tentative_alerts)}")
    print(f"correction bursts:                  {client.metrics.consistency.total_rec_done}")
    print(f"max alert latency:                  {client.proc_new:.2f} s (bound: 3 s + processing)")

    # Show the final (corrected) per-source incident counts.
    totals = {}
    for item in client.metrics.consistency.ledger:
        if item.is_stable:
            totals[item.value("src")] = totals.get(item.value("src"), 0) + item.value("connections")
    print("\ntop offending sources (stable, after corrections):")
    for src, count in sorted(totals.items(), key=lambda kv: -kv[1])[:5]:
        print(f"  {src:<16} {count} suspicious connections")


if __name__ == "__main__":
    main()
