#!/usr/bin/env python
"""Key-hash sharded scale-out: killing one shard of an N-way deployment.

The paper evaluates single nodes and chains; this example deploys the
reproduction's sharded scale-out shape through the declarative scenario
layer:

* ``split`` merges three source streams and multicasts its output to every
  shard (a stateless router);
* ``shard1`` ... ``shard4`` each keep only their slice of the key space --
  an ingress key-hash filter whose bucket ranges are owned by the
  ``ShardPlanner`` -- and run the deployment's stateful join over that
  slice (partitioned state is the point of sharding);
* ``merge`` reunites the slices with a 4-way fan-in SUnion, and a client
  measures the merged output.

The failure schedule crashes *both* replicas of ``shard1`` for 8 seconds,
so the merge cannot mask the failure by switching upstream replicas: the
dead shard's key-hash slice goes missing, the merge suspends for its delay
budget and then serves the surviving shards' slices tentatively, and after
the shard recovers reconciliation restores the gap-free ledger.

Run with::

    python examples/sharded_deployment.py
"""

from repro import ScenarioSpec, ShardPlanner
from repro.sharding import bucket_loads_from_keys

SHARDS = 4
FAILURE_DURATION = 8.0
RATE = 120.0  # aggregate tuples per simulated second (kept low for a quick run)


def main() -> None:
    spec = ScenarioSpec.sharded(
        shards=SHARDS, aggregate_rate=RATE, warmup=5.0, settle=25.0, seed=7
    ).with_shard_kill(1, duration=FAILURE_DURATION)

    topology = spec.resolved_topology()
    assignment = topology.shard_assignment
    print(f"topology {topology.name!r}: nodes={topology.node_names}")
    print(f"shard key: {assignment.spec.key!r} grouped by {assignment.spec.group} "
          f"over {assignment.spec.buckets} hash buckets")
    for shard, buckets in enumerate(assignment.buckets_by_shard):
        print(f"  shard{shard + 1}: buckets {buckets[0]}..{buckets[-1]} "
              f"({len(buckets)} of {assignment.spec.buckets})")
    print(f"failures: both replicas of 'shard1' crash for {FAILURE_DURATION:g} s\n")

    print("running ...")
    runtime = spec.run()
    client = runtime.client

    print(f"\nProc_new (max latency of new results): {client.proc_new:.3f} s "
          f"(bound X = {spec.dpc_config().max_incremental_latency:g} s)")
    print(f"stable / tentative / undone: {client.metrics.consistency.total_stable} / "
          f"{client.n_tentative} / {client.metrics.consistency.total_undos}")
    for name in topology.node_names:
        group = runtime.node_group(name)
        tentative = sum(
            stats["tentative"]
            for replica in group
            for stats in replica.statistics()["outputs"].values()
        )
        states = ", ".join(replica.state.value for replica in group)
        print(f"  {name:<7} replicas=[{states}] tentative_produced={tentative}")
    print(f"eventually consistent: {runtime.eventually_consistent()}")

    # What the load-aware planner thinks of the run: the synthetic key space
    # is near-uniform, so no bucket migrations should be needed.
    loads = bucket_loads_from_keys(assignment.spec, client.stable_sequence)
    plan = ShardPlanner(assignment.spec).rebalance(assignment, loads, tolerance=0.25)
    print(f"observed shard imbalance: {plan.imbalance_before:.3f} "
          f"(peak/mean); planned bucket moves: {len(plan.moves)}")
    print()
    print("The surviving shards never produced a tentative tuple: their key-hash")
    print("slices were never in doubt.  The merge went tentative only while the")
    print("dead shard's slice was missing, and reconciliation restored the")
    print("gap-free merged ledger after recovery -- the DPC guarantees, running")
    print("on a planner-owned sharded scale-out topology.")


if __name__ == "__main__":
    main()
