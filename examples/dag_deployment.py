#!/usr/bin/env python
"""A diamond DAG: killing one branch of a reconvergent replicated deployment.

The paper evaluates single nodes and chains, but its query diagrams are
general DAGs.  This example deploys the diamond topology through the
declarative scenario layer:

* ``ingest`` merges three source streams and fans its output out to two
  branches (one multicast batch feeds both);
* ``left`` and ``right`` each process a disjoint partition of the stream
  (even vs odd sequence groups -- a sharded dataflow);
* ``merge`` re-unites the partitions with a 2-way fan-in SUnion, and a
  client measures the merged output.

The failure schedule crashes *both* replicas of ``left`` for 8 seconds, so
the merge cannot mask the failure by switching upstream replicas: it
suspends for its delay budget, then processes the surviving branch's slice
tentatively, and reconciles with checkpoint/redo once the branch recovers.

Run with::

    python examples/dag_deployment.py
"""

from repro import ScenarioSpec

FAILURE_DURATION = 8.0
RATE = 120.0  # aggregate tuples per simulated second (kept low for a quick run)


def main() -> None:
    spec = ScenarioSpec.diamond(
        aggregate_rate=RATE, warmup=5.0, settle=25.0, seed=7
    ).with_branch_crash("left", duration=FAILURE_DURATION)

    topology = spec.resolved_topology()
    print(f"topology {topology.name!r}: nodes={topology.node_names}")
    for path in topology.paths():
        print(f"  path: {' -> '.join(path)}")
    print(f"failures: {len(spec.failures)} (both replicas of 'left' crash for "
          f"{FAILURE_DURATION:g} s)\n")

    print("running ...")
    runtime = spec.run()
    client = runtime.client

    print(f"\nProc_new (max latency of new results): {client.proc_new:.3f} s "
          f"(bound X = {spec.dpc_config().max_incremental_latency:g} s)")
    print(f"stable / tentative / undone: {client.metrics.consistency.total_stable} / "
          f"{client.n_tentative} / {client.metrics.consistency.total_undos}")
    for name in topology.node_names:
        group = runtime.node_group(name)
        tentative = sum(
            stats["tentative"]
            for replica in group
            for stats in replica.statistics()["outputs"].values()
        )
        states = ", ".join(replica.state.value for replica in group)
        print(f"  {name:<7} replicas=[{states}] tentative_produced={tentative}")
    print(f"eventually consistent: {runtime.eventually_consistent()}")
    print()
    print("The 'right' branch never produced a tentative tuple: its slice of the")
    print("stream was never in doubt.  The merge went tentative only for the")
    print("failed branch's slice, and reconciliation converged after recovery --")
    print("the DPC guarantees, transplanted from the paper's chains to a DAG.")


if __name__ == "__main__":
    main()
