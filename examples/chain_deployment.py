#!/usr/bin/env python
"""A four-node chain: delay policies and delay assignment in a distributed SPE.

This example reproduces, at example scale, the Section 6.2/6.3 story:

1. deploy a chain of four replicated processing nodes (Figure 14);
2. fail one input stream for 10 seconds;
3. compare three configurations:
   * ``Process & Process`` with the end-to-end budget split uniformly
     (D = 2 s per node),
   * ``Delay & Delay`` with the same uniform split,
   * ``Process & Process`` with the whole budget (minus a queuing allowance)
     assigned to every SUnion -- the paper's recommendation;
4. print the availability (Proc_new) and inconsistency (N_tentative) of each,
   as a small pivot table.

Run with::

    python examples/chain_deployment.py
"""

from repro.analysis.tables import pivot_results, render_text
from repro.config import DelayAssignment, DelayPolicy
from repro.core import DelayPlanner
from repro.experiments import availability_run

CHAIN_DEPTH = 4
BUDGET = 8.0  # end-to-end incremental latency bound X, in seconds
FAILURE_DURATION = 10.0
RATE = 120.0  # aggregate tuples per simulated second (kept low for a quick run)


def main() -> None:
    # The DelayPlanner shows what each strategy assigns before running anything.
    planner = DelayPlanner.for_chain(CHAIN_DEPTH, total_budget=BUDGET)
    for strategy in (DelayAssignment.UNIFORM, DelayAssignment.FULL):
        plan = planner.plan(strategy)
        print(
            f"{strategy.value:>8}: D = {plan.per_node['node1']:.1f} s per node, "
            f"masks failures up to {plan.masked_failure:.1f} s"
        )
    print()

    variants = {
        "Process & Process, D=2s": dict(
            policy=DelayPolicy.process_process(),
            per_node_delay=2.0,
            delay_assignment=DelayAssignment.UNIFORM,
        ),
        "Delay & Delay, D=2s": dict(
            policy=DelayPolicy.delay_delay(),
            per_node_delay=2.0,
            delay_assignment=DelayAssignment.UNIFORM,
        ),
        "Process & Process, D=6.5s": dict(
            policy=DelayPolicy.process_process(),
            per_node_delay=6.5,
            delay_assignment=DelayAssignment.FULL,
        ),
    }

    results = []
    for label, variant in variants.items():
        print(f"running {label} ...")
        results.append(
            availability_run(
                failure_duration=FAILURE_DURATION,
                label=label,
                chain_depth=CHAIN_DEPTH,
                replicas_per_node=2,
                aggregate_rate=RATE,
                max_incremental_latency=BUDGET,
                failure_kind="silence",
                settle=35.0,
                join_state_size=None,
                **variant,
            )
        )

    print()
    table = pivot_results(
        results,
        title=f"{CHAIN_DEPTH}-node chain, {FAILURE_DURATION:.0f} s failure, X = {BUDGET:.0f} s",
        row=lambda r: r.label,
        column=lambda r: "Proc_new (s)",
        value=lambda r: r.proc_new,
        row_label="configuration",
        column_label="metric",
    )
    for result in results:
        table.set(result.label, "N_tentative", result.n_tentative)
        table.set(result.label, "consistent", result.eventually_consistent)
    print(render_text(table))
    print()
    print("All three configurations stay eventually consistent.  The whole-budget")
    print("assignment still meets the 8-second bound even though every SUnion may")
    print("delay for 6.5 s, because all of them suspend at the same time; failures")
    print("shorter than 6.5 s would be masked entirely (run with FAILURE_DURATION=5")
    print("to see zero tentative tuples) -- the Section 6.3 result.")


if __name__ == "__main__":
    main()
