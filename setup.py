"""Setup shim for environments without PEP 660 editable-install support."""
from setuptools import setup

setup()
