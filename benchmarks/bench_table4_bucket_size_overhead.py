"""Table IV: serialization latency overhead as a function of SUnion bucket size.

One source at ~100 tuples/s feeds ``SUnion -> SOutput``; the boundary interval
is fixed at 10 ms and the bucket size varies.  The paper's observation: the
maximum and average per-tuple latency grow roughly linearly with the bucket
size, while a plain Union (no serialization, no boundaries) provides the
baseline floor.
"""

from __future__ import annotations

from conftest import full_sweep, print_results

from repro.experiments import table4

BUCKETS_QUICK = (0.01, 0.1, 0.2, 0.5)
BUCKETS_FULL = (0.01, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5)


def test_table4_bucket_size_overhead(run_once):
    buckets = BUCKETS_FULL if full_sweep() else BUCKETS_QUICK
    rows = run_once(table4, buckets, duration=20.0)
    print_results(
        "Table IV: latency overhead vs bucket size (boundary interval = 10 ms)",
        [row.row("bucket") for row in rows],
    )
    baseline, measured = rows[0], rows[1:]
    # Serialization always costs something compared to the plain Union.
    for row in measured:
        assert row.latency.average >= baseline.latency.average

    # Average and maximum latency grow monotonically with the bucket size, and
    # the growth is roughly proportional to it (the paper's linear trend).
    averages = [row.latency.average for row in measured]
    assert averages == sorted(averages)
    maxima = [row.latency.maximum for row in measured]
    assert maxima == sorted(maxima)
    small, large = measured[0], measured[-1]
    assert large.latency.maximum - small.latency.maximum > 0.5 * (
        large.parameter_ms - small.parameter_ms
    ) / 1000.0
