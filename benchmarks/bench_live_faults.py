"""Live backend under injected network faults: recovery trend metrics.

Deploys the chain and sharded placements with ``backend="live"`` and runs
each under a compiled :class:`~repro.live.faults.FaultPlan` -- a stream
disconnect for the chain, a full partition of one shard group for the
fan-out -- measuring how the hardened transport rides through the outage.

The hard metrics are the deterministic ones: ``*_stable_tuples`` pins the
finite workload every run must fully deliver (the ledger is byte-identical
to the simulator oracle at the same seed; see the ``REPRO_LIVE_TESTS``
parity suite).  Wall-clock readings -- total run time, the span of the
tentative phase, and how long after the heal the last tentative output
appears -- are environment-bound and recorded as warn-only ``*_wall_ms``
trend metrics; reconnect/drop counters ride along untracked for the job
log.
"""

from __future__ import annotations

import pytest
from conftest import full_sweep, print_results

from repro.deploy.placement import compile as compile_topology
from repro.live.faults import compile_failures
from repro.live.supervisor import LiveBackendUnavailable, require_fork
from repro.topology import Topology
from repro.workloads.scenarios import FailureSpec

STOP_QUICK = 4.0
STOP_FULL = 8.0
ONSET = 1.5
OUTAGE = 1.0
SEED = 1


def _fork_available() -> bool:
    try:
        require_fork()
    except LiveBackendUnavailable:
        return False
    return True


def _faulted_run(label: str, topology, rate: float, stop: float, failures) -> dict:
    placement = compile_topology(topology, replicas_per_node=2)
    plan, kills = compile_failures(placement, failures, seed=SEED)
    assert not kills
    live = placement.deploy(
        seed=SEED, aggregate_rate=rate, source_stop_time=stop, backend="live"
    )
    result = live.run(duration=stop + 1.5, faults=plan, drain_timeout=20.0)
    phases = [p for p in result.tentative_phase.values() if p.get("count")]
    tentative_span = max(
        (p["last"] - p["first"] for p in phases), default=0.0
    )
    heal_at = max((rule["end"] for rule in plan.describe()), default=0.0)
    recovery = max(
        (p["last"] - heal_at for p in phases), default=0.0
    )
    return {
        "label": label,
        "stable_tuples": result.total_stable,
        "tentative_tuples": result.total_tentative,
        "injected": sum(result.injected_faults().values()),
        "wall_seconds": result.wall_seconds,
        "tentative_span_s": tentative_span,
        "recovery_s": max(recovery, 0.0),
        "reconnect_attempts": result.reconnect_attempts,
        "reconnects": result.reconnects,
        "dropped_frames": result.dropped_frames,
        "dead_letters": result.dead_letters,
        "eventually_consistent": result.eventually_consistent,
    }


@pytest.mark.skipif(not _fork_available(), reason="no fork start method")
def test_live_faults(run_once, benchmark):
    stop = STOP_FULL if full_sweep() else STOP_QUICK

    def sweep():
        return [
            _faulted_run(
                "chain2_disconnect", Topology.chain(2), 90.0, stop,
                [FailureSpec("disconnect", ONSET, OUTAGE)],
            ),
            _faulted_run(
                "shard4_partition", Topology.shard(4), 120.0, stop,
                [FailureSpec("partition", ONSET, OUTAGE,
                             node="shard1", node_replica=-1)],
            ),
        ]

    rows = run_once(sweep)
    print_results(
        "Live fault injection: outage ride-through on real processes",
        [
            (
                f"{row['label']:<17} stable={row['stable_tuples']:>6} "
                f"tentative={row['tentative_tuples']:>5} "
                f"injected={row['injected']:>4} wall={row['wall_seconds']:.2f}s "
                f"recovery={row['recovery_s']:.2f}s "
                f"reconnects={row['reconnects']}/{row['reconnect_attempts']} "
                f"consistent={'yes' if row['eventually_consistent'] else 'NO'}"
            )
            for row in rows
        ],
    )

    for row in rows:
        label = row["label"]
        # Hard: the finite workload is fully delivered despite the outage.
        benchmark.extra_info[f"{label}_stable_tuples"] = row["stable_tuples"]
        # Warn-only wall-clock trajectory of the outage and its recovery.
        benchmark.extra_info[f"{label}_wall_ms"] = round(row["wall_seconds"] * 1000, 3)
        benchmark.extra_info[f"{label}_tentative_wall_ms"] = round(
            row["tentative_span_s"] * 1000, 3
        )
        benchmark.extra_info[f"{label}_recovery_wall_ms"] = round(
            row["recovery_s"] * 1000, 3
        )
        # Untracked context for the job log.
        benchmark.extra_info[f"{label}_reconnect_attempts"] = row["reconnect_attempts"]
        benchmark.extra_info[f"{label}_injected_faults"] = row["injected"]
        assert row["eventually_consistent"], label
        assert row["tentative_tuples"] > 0, f"{label}: outage never went tentative"
        assert row["dead_letters"] == 0, f"{label}: transport dead-lettered frames"
