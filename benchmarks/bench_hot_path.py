"""Data-plane hot path: wall-clock tuples/sec through the engine and a deployment.

Not a paper figure: the paper evaluates DPC on a physical cluster at high
input rates (Section 9); this benchmark is the reproduction's equivalent of
that axis.  It measures the per-tuple cost of the data plane two ways:

* **engine fragment** -- a standalone ``LocalEngine`` running the workhorse
  fragment shape (3-way SUnion -> Filter -> Map -> SOutput) fed pre-generated
  batches of data + boundary tuples.  No simulator, no network: pure
  per-tuple operator cost (tuple construction, bucketing, predicate and
  transform evaluation, stabilization, relabeling).
* **full deployment** -- a failure-free ``shard(4)`` scenario (split router,
  4 key-hash shard fragments with SJoins, fan-in merge) run end to end,
  reporting stable tuples delivered to the client per wall-clock second.

Wall-clock readings are best-of-``ROUNDS`` and recorded in ``extra_info`` as
``*_wall_ms`` / ``*_tuples_per_sec``; ``check_bench_regression.py`` tracks
those warn-only (noisy runners must not flake CI) while the deterministic
companion metrics (output counts, simulator events, Proc_new) stay hard-fail.
"""

from __future__ import annotations

import time

from conftest import full_sweep, print_results

from repro.experiments import shard_throughput_run
from repro.spe.engine import LocalEngine
from repro.spe.operators import Filter, Map, SOutput, SUnion
from repro.spe.query_diagram import QueryDiagram
from repro.spe.streams import StreamWriter

ROUNDS = 3
#: Data tuples pushed through the standalone fragment per round.
FRAGMENT_TUPLES = 18_000
FRAGMENT_PORTS = 3
FRAGMENT_RATE = 100.0  # stimes per port advance at 1/rate
BUCKET_SIZE = 0.1
BOUNDARY_INTERVAL = 0.1
BATCH_TUPLES = 20  # tuples per pushed batch, mirroring the transport batching

SHARD_RATE = 1200.0
SHARD_DURATION = 15.0


def build_fragment_engine() -> LocalEngine:
    """The workhorse fragment: 3-way SUnion -> Filter -> Map -> SOutput."""
    diagram = QueryDiagram(name="hot-path")
    merge = SUnion("merge", arity=FRAGMENT_PORTS, bucket_size=BUCKET_SIZE)
    keep = Filter("keep", lambda values: values["seq"] % 10 != 0)
    scale = Map("scale", lambda values: {"seq": values["seq"], "value": values["value"] * 2.0})
    out = SOutput("out.soutput")
    for operator in (merge, keep, scale, out):
        diagram.add_operator(operator)
    diagram.connect(merge, keep)
    diagram.connect(keep, scale)
    diagram.connect(scale, out)
    for port in range(FRAGMENT_PORTS):
        diagram.bind_input(f"in{port}", merge, port)
    diagram.bind_output("out", out)
    diagram.validate()
    return LocalEngine(diagram)


def generate_batches(n_tuples: int) -> list[tuple[str, list]]:
    """Pre-generate the input batches (generation cost stays out of the timing).

    Every port carries an interleaved stream of insertion tuples (stimes
    advancing at ``FRAGMENT_RATE``) with a boundary every
    ``BOUNDARY_INTERVAL`` so SUnion buckets keep stabilizing, exactly like a
    source-fed deployment in the steady state.
    """
    writers = [StreamWriter(stream_name=f"in{port}") for port in range(FRAGMENT_PORTS)]
    next_boundary = [BOUNDARY_INTERVAL] * FRAGMENT_PORTS
    pending: list[list] = [[] for _ in range(FRAGMENT_PORTS)]
    batches: list[tuple[str, list]] = []
    period = 1.0 / FRAGMENT_RATE
    for sequence in range(n_tuples):
        port = sequence % FRAGMENT_PORTS
        stime = (sequence // FRAGMENT_PORTS) * period
        if stime >= next_boundary[port]:
            pending[port].append(writers[port].boundary(next_boundary[port]))
            next_boundary[port] += BOUNDARY_INTERVAL
        pending[port].append(
            writers[port].insertion(stime, {"seq": sequence, "value": float(sequence)})
        )
        if len(pending[port]) >= BATCH_TUPLES:
            batches.append((f"in{port}", pending[port]))
            pending[port] = []
    for port in range(FRAGMENT_PORTS):
        # Closing boundaries so the last buckets stabilize and flush.
        pending[port].append(writers[port].boundary(next_boundary[port] + BOUNDARY_INTERVAL))
        batches.append((f"in{port}", pending[port]))
    return batches


def run_fragment_once(batches: list[tuple[str, list]]) -> dict:
    engine = build_fragment_engine()
    produced = 0
    started = time.perf_counter()
    for stream, batch in batches:
        out = engine.push(stream, batch)["out"]
        produced += sum(1 for item in out if item.is_data)
    wall = time.perf_counter() - started
    return {
        "wall_seconds": wall,
        "tuples_in": FRAGMENT_TUPLES,
        "tuples_out": produced,
        "tuples_per_second": FRAGMENT_TUPLES / wall if wall > 0 else float("inf"),
        "processed": engine.tuples_processed,
    }


def best_fragment_run(rounds: int = ROUNDS) -> dict:
    batches = generate_batches(FRAGMENT_TUPLES)
    best = None
    for _ in range(rounds):
        row = run_fragment_once(batches)
        if best is None or row["tuples_per_second"] > best["tuples_per_second"]:
            best = row
    return best


def best_shard_run(rounds: int = ROUNDS) -> dict:
    best = None
    for _ in range(rounds):
        row = shard_throughput_run(4, aggregate_rate=SHARD_RATE, duration=SHARD_DURATION)
        if best is None or row["tuples_per_second"] > best["tuples_per_second"]:
            best = row
    return best


def test_engine_fragment_hot_path(run_once, benchmark):
    rounds = ROUNDS * 2 if full_sweep() else ROUNDS
    row = run_once(lambda: best_fragment_run(rounds))
    print_results(
        "Engine-fragment hot path: SUnion(3) -> Filter -> Map -> SOutput",
        [
            f"tuples in        {row['tuples_in']:>8}",
            f"tuples out       {row['tuples_out']:>8}",
            f"wall time        {row['wall_seconds'] * 1000:>8.1f} ms (best of {rounds})",
            f"throughput       {row['tuples_per_second']:>8.0f} tuples/s",
        ],
    )
    benchmark.extra_info["fragment_wall_ms"] = round(row["wall_seconds"] * 1000, 3)
    benchmark.extra_info["fragment_tuples_per_sec"] = round(row["tuples_per_second"], 1)
    # Deterministic companions: the fragment's output count and the engine's
    # processed-tuple counter must never drift under a perf refactor.
    benchmark.extra_info["fragment_stable_tuples"] = row["tuples_out"]
    benchmark.extra_info["fragment_processed_events"] = row["processed"]

    # The Filter drops every 10th tuple; everything else must come out stably.
    assert row["tuples_out"] == FRAGMENT_TUPLES - FRAGMENT_TUPLES // 10
    # Every data tuple is counted once per operator it traverses (4 stages,
    # minus the filtered-out share that never reaches Map/SOutput).
    assert row["processed"] > FRAGMENT_TUPLES * 3


def test_shard4_deployment_hot_path(run_once, benchmark):
    row = run_once(best_shard_run)
    print_results(
        "Full shard(4) deployment: wall-clock stable tuples/sec at the sink",
        [
            f"{row['label']:<10} tuples/s={row['tuples_per_second']:>8.0f} "
            f"wall={row['wall_seconds'] * 1000:>7.1f} ms events={row['events_fired']} "
            f"Proc_new={row['proc_new']:.3f}s "
            f"consistent={'yes' if row['eventually_consistent'] else 'NO'}",
        ],
    )
    benchmark.extra_info["shard4_wall_ms"] = round(row["wall_seconds"] * 1000, 3)
    benchmark.extra_info["shard4_tuples_per_sec"] = round(row["tuples_per_second"], 1)
    benchmark.extra_info["shard4_hot_path_events"] = row["events_fired"]
    benchmark.extra_info["shard4_hot_path_proc_new"] = round(row["proc_new"], 6)
    benchmark.extra_info["shard4_hot_path_stable_tuples"] = row["stable_tuples"]

    assert row["eventually_consistent"]
    assert row["stable_tuples"] > 0
