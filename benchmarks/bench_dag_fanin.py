"""Fan-in DAG: one ingest branch silenced, the merge keeps its bound.

Not a paper figure: extends the Section 6.2 chain experiments to cross-node
fan-in.  Two independent ingest branches (each merging its own source
streams) feed one merge node; the failure silences the boundaries of one
branch's source, which suspends only the SUnion ports fed by that branch.

Asserted properties:

* the unaffected branch never produces a tentative tuple;
* the merge processes the silenced branch's data tentatively but keeps
  Proc_new within the availability bound;
* when boundaries resume, reconciliation converges end to end.
"""

from __future__ import annotations

from conftest import full_sweep, print_results

from repro.experiments import fanin_sweep

DURATIONS_QUICK = (4.0, 8.0)
DURATIONS_FULL = (4.0, 8.0, 16.0, 30.0)


def test_fanin_branch_silence(run_once):
    durations = DURATIONS_FULL if full_sweep() else DURATIONS_QUICK
    results = run_once(fanin_sweep, durations, seed=1)
    lines = [r.row() for r in results]
    for result in results:
        branches = result.extra["branches"]
        lines.append(
            "    branches tentative: "
            + ", ".join(f"{name}={counts['tentative']}" for name, counts in branches.items())
        )
    print_results("Fan-in DAG: boundary silence on branch1's first source", lines)

    for result in results:
        label = f"fanin failure={result.failure_duration:g}s"
        assert result.eventually_consistent, label
        branches = result.extra["branches"]
        assert branches["branch2"]["tentative"] == 0, label
        assert branches["branch1"]["tentative"] > 0, label
        assert branches["merge"]["tentative"] > 0, label
        assert result.proc_new < result.extra["availability_bound"], label
