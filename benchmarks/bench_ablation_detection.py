"""Ablation: failure-detection parameters (keepalive period / timeout).

Section 5.1 reports ~40 ms to switch upstream replicas plus up to one
keepalive period (100 ms by default) to detect that the current upstream
neighbor stopped responding.  The reproduction models the switch cost as a
constant, so this benchmark sweeps the keepalive period and shows the
detection component of the reaction time: larger periods widen the largest
gap in new data and, once the detection timeout approaches the delay budget,
start to erode the availability bound.
"""

from __future__ import annotations

from conftest import full_sweep, print_results

from repro.experiments import detection_sweep

PERIODS_QUICK = (0.1, 0.5)
PERIODS_FULL = (0.05, 0.1, 0.25, 0.5)


def test_ablation_detection_parameters(run_once):
    periods = PERIODS_FULL if full_sweep() else PERIODS_QUICK
    results = run_once(detection_sweep, periods, failure_duration=10.0)
    print_results(
        "Ablation: keepalive period and detection timeout",
        [result.row() for result in results],
    )
    for result in results:
        assert result.eventually_consistent

    fastest = results[0]
    slowest = results[-1]
    # With the paper's default (100 ms keepalive or faster) the bound holds.
    assert fastest.proc_new < 3.75
    # Slower detection can only delay the reaction to the failure.
    assert slowest.max_gap >= fastest.max_gap - 0.3
    assert slowest.proc_new >= fastest.proc_new - 0.3
