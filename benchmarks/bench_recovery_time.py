"""Recovery time vs retained-suffix length: checkpoint-shipped vs full replay.

Not a paper figure: Section 4.5 of the paper recovers a crashed replica by
replaying its inputs from the retained upstream logs, which makes recovery
time O(retained window).  The ``repro.statexfer`` layer instead ships the
surviving partner's latest recovery checkpoint and replays only the short
suffix past the checkpoint's stream cursors -- O(suffix since last capture).
This benchmark sweeps the failure duration (the knob that grows the replay
suffix) on a fig18-style chain and measures, per mode:

* **recovery_s** -- the modeled rejoin time
  ``transfer_delay + replayed / redo_rate`` recorded by the recovering
  replica (the simulation applies replay instantaneously in simulated time,
  so the model is where the recovery-time axis lives);
* **replayed / shipped_items** -- the suffix length each mode pays for and
  the checkpoint items shipped in exchange;
* **Proc_new** -- the client availability metric, which must not regress
  when checkpointing is on.

Asserted: for long failures checkpoint-shipped recovery actually engages
(mode ``checkpoint``), its modeled recovery time and replay suffix are
strictly smaller than full replay's, its recovery time stays roughly flat as
the outage grows (while full replay's grows linearly), and -- the consistency
half of the claim -- both modes converge to byte-identical stable ledgers.

All recorded metrics are deterministic simulation outputs tracked against
``BENCH_baseline.json`` by ``check_bench_regression.py`` (``*_recovery_s``
and ``*proc_new`` are larger-is-worse).
"""

from __future__ import annotations

from conftest import full_sweep, print_results

from repro.experiments import recovery_time_sweep

DURATIONS_QUICK = (4.0, 10.0)
DURATIONS_FULL = (2.0, 4.0, 10.0, 20.0)
#: Outages at least this long must take the checkpoint path (shorter ones may
#: legitimately prefer full replay under the cost model).
LONG_FAILURE = 4.0


def test_recovery_time_vs_suffix(run_once, benchmark):
    durations = DURATIONS_FULL if full_sweep() else DURATIONS_QUICK

    pairs = run_once(recovery_time_sweep, durations)

    lines = []
    for checkpointed, replay in pairs:
        lines.append(checkpointed.row())
        lines.append(replay.row())
        lines.append(
            f"    -> recovery {checkpointed.recovery_s:.3f}s vs {replay.recovery_s:.3f}s "
            f"({replay.recovery_s / checkpointed.recovery_s:.1f}x), suffix "
            f"{checkpointed.replayed} vs {replay.replayed} tuples"
        )
    print_results(
        "Recovery time vs retained-suffix length (checkpoint-shipped vs full replay)",
        lines,
    )

    for checkpointed, replay in pairs:
        tag = f"{checkpointed.failure_duration:g}s"
        benchmark.extra_info[f"ckpt_{tag}_recovery_s"] = round(checkpointed.recovery_s, 6)
        benchmark.extra_info[f"replay_{tag}_recovery_s"] = round(replay.recovery_s, 6)
        benchmark.extra_info[f"ckpt_{tag}_proc_new"] = round(checkpointed.proc_new, 6)
        benchmark.extra_info[f"replay_{tag}_proc_new"] = round(replay.proc_new, 6)
        benchmark.extra_info[f"ckpt_{tag}_replayed"] = checkpointed.replayed
        benchmark.extra_info[f"replay_{tag}_replayed"] = replay.replayed
        benchmark.extra_info[f"ckpt_{tag}_shipped_items"] = checkpointed.shipped_items

    for checkpointed, replay in pairs:
        label = f"failure {checkpointed.failure_duration:g}s"
        # Both modes heal to a consistent ledger...
        assert checkpointed.eventually_consistent, label
        assert replay.eventually_consistent, label
        # ...and to the *same* ledger: checkpoint adoption must not change
        # a single stable tuple the client ends up with.
        assert checkpointed.ledger_rows == replay.ledger_rows, label
        assert replay.mode == "replay", label
        if checkpointed.failure_duration >= LONG_FAILURE:
            # The headline claim: on long failures the checkpoint path engages
            # and beats full replay on both the modeled time and the suffix.
            assert checkpointed.mode == "checkpoint", label
            assert checkpointed.recovery_s < replay.recovery_s, label
            assert checkpointed.replayed < replay.replayed, label

    # Full replay's cost grows with the outage; the checkpoint path's stays
    # bounded by the capture cadence, so the gap widens with the failure.
    longest_ckpt, longest_replay = pairs[-1]
    shortest_ckpt, shortest_replay = pairs[0]
    assert longest_replay.recovery_s > shortest_replay.recovery_s
    growth_ckpt = longest_ckpt.recovery_s - shortest_ckpt.recovery_s
    growth_replay = longest_replay.recovery_s - shortest_replay.recovery_s
    assert growth_ckpt < growth_replay
