"""Sharded scale-out: throughput scaling and shard-kill recovery.

Not a paper figure: the paper's evaluation never exercises a throughput
axis, but the ROADMAP's production north-star does.  This benchmark deploys
``Topology.shard`` -- a stateless split router fanning out to N key-hash
shard fragments (ingress Filter -> SUnion -> SJoin -> SOutput over 1/N of
the key space) re-merged by an N-way fan-in SUnion -- and measures:

* **throughput** -- stable tuples delivered per wall-clock second for
  shard(1, 2, 4[, 8]) against a *single chain with the same total operator
  count* (the equal-operator baseline).  Sharding wins because every tuple
  crosses three fragment levels instead of ~N, and the per-level
  serialization / join / output / buffering work is partitioned N ways.
  Asserted: shard(4) sustains >= 1.5x the equal-operator chain's tuples/sec
  with both deployments eventually consistent and Proc_new within the
  bound X.  (The bound was 2x before the data-plane hot-path overhaul;
  slotted tuples and allocation-free relabeling shrank the per-level cost
  the chain pays ~10 times per tuple more than the cost sharding already
  avoids, so the chain baseline sped up *more* and the ratio compressed --
  both deployments are ~3-5x faster in absolute tuples/sec.)
* **shard-kill recovery** -- crash *both* replicas of one shard (the merge
  cannot mask the failure by switching).  Asserted across seeds: the
  surviving shards never produce a tentative tuple and end STABLE, the
  client's Proc_new stays below X, and the merged ledger reconciles
  gap-free, duplicate-free, and in order.

Wall-clock throughput is measured best-of-``ROUNDS`` per deployment (the
sustained-capacity reading standard benchmarking practice calls for); the
simulator event counts and Proc_new recorded in ``extra_info`` are
deterministic and tracked against ``BENCH_baseline.json`` by
``check_bench_regression.py``.
"""

from __future__ import annotations

from conftest import full_sweep, print_results

from repro.experiments import (
    chain_throughput_run,
    equivalent_chain_depth,
    shard_kill_failure,
    shard_throughput_run,
)

RATE = 1200.0
DURATION = 15.0
ROUNDS = 2
SHARDS_QUICK = (1, 2, 4)
SHARDS_FULL = (1, 2, 4, 8)
KILL_SEEDS = (1, 2, 3)
#: Availability bound X of the shard-kill scenario (DPCConfig default).
BOUND_X = 3.0


def _best_of(measure, rounds: int = ROUNDS) -> dict:
    """Highest-throughput reading of ``rounds`` runs (identical sim results)."""
    best = None
    for _ in range(rounds):
        row = measure()
        if best is None or row["tuples_per_second"] > best["tuples_per_second"]:
            best = row
    return best


def test_shard_throughput_scaling(run_once, benchmark):
    shard_counts = SHARDS_FULL if full_sweep() else SHARDS_QUICK

    def sweep():
        rows = [
            _best_of(
                lambda n=n: shard_throughput_run(n, aggregate_rate=RATE, duration=DURATION)
            )
            for n in shard_counts
        ]
        rows.append(
            _best_of(
                lambda: chain_throughput_run(
                    equivalent_chain_depth(4), aggregate_rate=RATE, duration=DURATION
                )
            )
        )
        return rows

    rows = run_once(sweep)
    lines = [
        (
            f"{row['label']:<10} ops={row['operators']:>3} "
            f"tuples/s={row['tuples_per_second']:>8.0f} "
            f"events={row['events_fired']:>6} Proc_new={row['proc_new']:.3f}s "
            f"consistent={'yes' if row['eventually_consistent'] else 'NO'}"
        )
        for row in rows
    ]
    chain_row = rows[-1]
    shard4_row = next(r for r in rows if r["label"] == "shard(4)")
    ratio = shard4_row["tuples_per_second"] / chain_row["tuples_per_second"]
    lines.append(
        f"shard(4) vs {chain_row['label']}: {ratio:.2f}x tuples/s, "
        f"{chain_row['events_fired'] / shard4_row['events_fired']:.2f}x fewer events"
    )
    print_results(
        "Sharded scale-out: sustained throughput vs the equal-operator single chain",
        lines,
    )

    for row in rows:
        benchmark.extra_info[f"{row['label']}_events"] = row["events_fired"]
        benchmark.extra_info[f"{row['label']}_proc_new"] = round(row["proc_new"], 6)
        # The run is deterministic, so the delivered-tuple count is a trend
        # metric too (a drop means the deployment stopped keeping up).
        benchmark.extra_info[f"{row['label']}_stable_tuples"] = row["stable_tuples"]
        # Wall-clock trajectory, tracked warn-only by check_bench_regression.
        benchmark.extra_info[f"{row['label']}_wall_ms"] = round(row["wall_seconds"] * 1000, 3)
        benchmark.extra_info[f"{row['label']}_tuples_per_sec"] = round(
            row["tuples_per_second"], 1
        )
    benchmark.extra_info["shard4_vs_chain_speedup"] = round(ratio, 3)

    for row in rows:
        # Identical consistency, Proc_new within the availability bound.
        assert row["eventually_consistent"], row["label"]
        assert row["proc_new"] < BOUND_X, f"{row['label']}: Proc_new={row['proc_new']:.3f}"
    # The headline scale-out claim: comfortably above the equal-operator
    # single chain (see the module docstring for why the bound is 1.5x).
    assert ratio >= 1.5, f"shard(4) only {ratio:.2f}x the equal-operator chain"
    # Sharding must also reduce simulator events (fewer full-stream hops).
    assert shard4_row["events_fired"] < chain_row["events_fired"]


def test_shard_kill_recovery(run_once):
    def sweep():
        return [shard_kill_failure(8.0, shards=4, seed=seed) for seed in KILL_SEEDS]

    results = run_once(sweep)
    lines = []
    for seed, result in zip(KILL_SEEDS, results):
        shards = result.extra["shards"]
        lines.append(result.row())
        lines.append(
            f"    seed={seed} killed={result.extra['killed_shard']} shard tentative: "
            + ", ".join(f"{name}={counts['tentative']}" for name, counts in shards.items())
        )
    print_results(
        "Shard-kill: both replicas of 'shard1' crashed; survivors must stay stable",
        lines,
    )

    for seed, result in zip(KILL_SEEDS, results):
        label = f"shard-kill seed={seed}"
        # The merged ledger reconciles gap-free, duplicate-free, and ordered.
        assert result.eventually_consistent, label
        shards = result.extra["shards"]
        for survivor in result.extra["survivors"]:
            # Survivor shards' key-hash slices are never in doubt.
            assert shards[survivor]["tentative"] == 0, f"{label}: {survivor}"
            assert shards[survivor]["stable"] > 0, f"{label}: {survivor}"
        # The dead shard's slice goes tentative at the merge.
        assert shards["merge"]["tentative"] > 0, label
        # Availability: Proc_new stays within the end-to-end bound X.
        assert result.proc_new < result.extra["availability_bound"], label
        # Every replica group has settled back to STABLE.
        for name, states in result.extra["shard_states"].items():
            assert all(state == "stable" for state in states), f"{label}: {name}={states}"
        # The synthetic key space is near-uniform: the planner must not want
        # to migrate buckets after a healthy run.
        assert result.extra["rebalance"]["moves"] == 0, label
