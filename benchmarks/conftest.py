"""Shared fixtures for the benchmark harness.

Every benchmark reproduces one table or figure of the paper by running the
corresponding experiment once (``benchmark.pedantic`` with a single round --
the interesting output is the reproduced table, not the wall-clock time of
the simulation) and printing the rows so they can be compared against the
paper and recorded in EXPERIMENTS.md.

Set ``REPRO_BENCH_SCALE=full`` in the environment to run the full parameter
sweeps from the paper instead of the reduced (but shape-preserving) defaults.
"""

from __future__ import annotations

import os

import pytest


def full_sweep() -> bool:
    return os.environ.get("REPRO_BENCH_SCALE", "").lower() == "full"


@pytest.fixture
def run_once(benchmark):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


def print_results(title: str, lines) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
    for line in lines:
        print(line)
