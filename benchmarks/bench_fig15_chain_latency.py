"""Figure 15: Proc_new for a chain of replicated nodes (D = 2 s per node).

Paper findings: both policies meet the (2 s x depth) availability bound;
Process & Process is close to the latency of a single node (all nodes suspend
simultaneously, then tuples stream through with only a small per-node extra
delay), whereas Delay & Delay adds the full D per node in the chain.
"""

from __future__ import annotations

from conftest import full_sweep, print_results

from repro.experiments import fig15, format_table

DEPTHS_QUICK = (1, 2, 4)
DEPTHS_FULL = (1, 2, 3, 4)


def test_fig15_chain_latency(run_once):
    depths = DEPTHS_FULL if full_sweep() else DEPTHS_QUICK
    results = run_once(fig15, depths, failure_duration=30.0)
    print_results(
        "Figure 15: Proc_new vs chain depth (D = 2 s per node, 30 s failure)",
        [format_table("paper: Delay&Delay grows ~2 s per node; Process&Process stays near one node's delay", results)],
    )
    by = {(r.label, r.chain_depth): r for r in results}

    for result in results:
        depth = result.chain_depth
        assert result.eventually_consistent, result.label
        # Availability requirement: Delay_new < 2 s * depth (plus the normal
        # per-hop processing latency of the simulated deployment).
        assert result.proc_new < 2.0 * depth + 1.5, result.label

    deepest = max(depths)
    process = by[(f"Process & Process (depth {deepest})", deepest)]
    delay = by[(f"Delay & Delay (depth {deepest})", deepest)]
    # Process & Process gives significantly better availability on deep chains.
    assert process.proc_new < delay.proc_new
    # Delay & Delay latency grows with depth (roughly additive per node).
    shallow_delay = by[(f"Delay & Delay (depth {min(depths)})", min(depths))]
    assert delay.proc_new > shallow_delay.proc_new + 1.0
