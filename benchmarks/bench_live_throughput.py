"""Live backend: wall-clock throughput over real processes and sockets.

Not a paper figure: the paper measured a real Borealis deployment, and this
benchmark is the reproduction's equivalent reality check.  The same compiled
placements the simulator benchmarks use -- a chain and a shard(4) fan-out --
are deployed with ``backend="live"`` (one OS process per replica plus an
edge worker, wire-codec frames over Unix-domain sockets, wall-clock timers)
and run against a fixed finite workload (``source_stop_time``), measuring
stable tuples delivered per wall-clock second.

Unlike every other benchmark in this directory the numbers here are
environment-bound, not deterministic: scheduling jitter moves them run to
run.  They are recorded as warn-only ``*_wall_ms`` / ``*_tuples_per_sec``
trend metrics (``check_bench_regression.py`` never fails on wall metrics),
so a live-path slowdown shows up as a warning trail in CI rather than a
flaky hard failure.  The hard assertions are the ones that must always
hold: every deployment drains to an eventually-consistent ledger and
delivers the full finite workload.
"""

from __future__ import annotations

import pytest
from conftest import full_sweep, print_results

from repro.deploy.placement import compile as compile_topology
from repro.live.supervisor import LiveBackendUnavailable, require_fork
from repro.topology import Topology

#: Sources stop at this stime; the workload is then finite and identical
#: across rounds (and across backends -- see the parity tests).
STOP_QUICK = 4.0
STOP_FULL = 8.0
RATE_QUICK = 240.0
RATE_FULL = 480.0
SEED = 1


def _fork_available() -> bool:
    try:
        require_fork()
    except LiveBackendUnavailable:
        return False
    return True


def _live_run(label: str, topology, rate: float, stop: float) -> dict:
    placement = compile_topology(topology, replicas_per_node=2)
    live = placement.deploy(
        seed=SEED, aggregate_rate=rate, source_stop_time=stop, backend="live"
    )
    result = live.run(duration=stop + 1.0, drain_timeout=20.0)
    stable = result.total_stable
    return {
        "label": label,
        "workers": len(result.nodes) + 1,
        "stable_tuples": stable,
        "wall_seconds": result.wall_seconds,
        "tuples_per_second": stable / result.wall_seconds,
        "eventually_consistent": result.eventually_consistent,
    }


@pytest.mark.skipif(not _fork_available(), reason="no fork start method")
def test_live_throughput(run_once, benchmark):
    stop = STOP_FULL if full_sweep() else STOP_QUICK
    rate = RATE_FULL if full_sweep() else RATE_QUICK

    def sweep():
        return [
            _live_run("chain-2", Topology.chain(2), rate, stop),
            _live_run("shard-4", Topology.shard(4), rate, stop),
        ]

    rows = run_once(sweep)
    print_results(
        "Live backend: wall-clock throughput, chain vs sharded fan-out",
        [
            (
                f"{row['label']:<8} workers={row['workers']:>2} "
                f"stable={row['stable_tuples']:>6} wall={row['wall_seconds']:.2f}s "
                f"tuples/s={row['tuples_per_second']:>7.1f} "
                f"consistent={'yes' if row['eventually_consistent'] else 'NO'}"
            )
            for row in rows
        ],
    )

    for row in rows:
        label = row["label"]
        # Warn-only wall-clock trajectory (check_bench_regression.py treats
        # *_wall_ms / *_tuples_per_sec as trend metrics, never hard bounds).
        benchmark.extra_info[f"{label}_wall_ms"] = round(row["wall_seconds"] * 1000, 3)
        benchmark.extra_info[f"{label}_tuples_per_sec"] = round(
            row["tuples_per_second"], 1
        )
        # Hard invariants: the live run drains completely and reconciles.
        assert row["eventually_consistent"], label
        assert row["stable_tuples"] > 0, label
    # Both deployments consumed the same finite workload, so the merged
    # stable counts must agree: the fan-out changes *where* work happens,
    # never *what* is delivered.
    assert rows[0]["stable_tuples"] == rows[1]["stable_tuples"], (
        rows[0]["stable_tuples"],
        rows[1]["stable_tuples"],
    )
