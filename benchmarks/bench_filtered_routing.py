"""Filtered subscriptions: split-egress cost, multicast vs producer-side routing.

Not a paper figure: the paper's deployments never fan one stream out to
parallel consumers of disjoint slices.  The sharded scale-out does -- and
until the `repro.deploy` control plane, the split router multicast its
*full* output to every shard replica, which dropped the foreign ~ (N-1)/N
at an ingress Filter after paying for serialization and transport.  With
filtered subscriptions the slice predicate runs at the producer, so each
shard replica only ever receives its 1/N.

Measured for shard(4), same seed, same workload, both routing modes:

* **split egress** -- tuples put on the wire by the split replicas (the
  producer-side routing win; asserted to drop >= 3x) and (batch, receiver)
  sends;
* **ledger identity** -- the merged client ledger must be byte-identical
  between the modes: routing is a pure optimization of the data path;
* **throughput** -- wall-clock tuples/sec for both modes (informational) and
  the deterministic event / Proc_new / delivered-tuple metrics tracked
  against ``BENCH_baseline.json``.

A second benchmark closes the control loop the ROADMAP named: a zipfian
hot-key workload, a mid-run ``Deployment.apply(plan)`` bucket handoff, and
the merged ledger staying gap-free / duplicate-free / ordered across seeds.
"""

from __future__ import annotations

import time

from conftest import print_results

from repro.experiments import rebalance_run
from repro.runtime import ScenarioSpec

RATE = 1200.0
DURATION = 15.0
SHARDS = 4
SEED = 1
REBALANCE_SEEDS = (1, 2, 3)
#: Availability bound X (DPCConfig default) for the routing runs.
BOUND_X = 3.0
#: The headline claim: producer-side routing cuts split egress >= 3x.
MIN_EGRESS_DROP = 3.0


def routing_run(filtered: bool) -> dict:
    spec = ScenarioSpec.sharded(
        shards=SHARDS,
        aggregate_rate=RATE,
        replicas_per_node=1,
        warmup=DURATION,
        settle=0.0,
        seed=SEED,
        filtered_routing=filtered,
    )
    runtime = spec.build()
    started = time.perf_counter()
    runtime.run()
    wall = time.perf_counter() - started
    split = runtime.node_group("split")
    summary = runtime.client.summary()
    return {
        "label": "filtered" if filtered else "multicast",
        "egress_tuples": sum(node.tuples_sent for node in split),
        "egress_batches": sum(node.batches_sent for node in split),
        "events_fired": runtime.simulator.events_fired,
        "stable_tuples": summary["total_stable"],
        "proc_new": summary["proc_new"],
        "tuples_per_second": summary["total_stable"] / wall if wall > 0 else float("inf"),
        "ledger": runtime.client.stable_sequence,
        "consistent": runtime.eventually_consistent(),
    }


def test_filtered_routing_split_egress(run_once, benchmark):
    rows = run_once(lambda: [routing_run(False), routing_run(True)])
    multicast, filtered = rows
    drop = multicast["egress_tuples"] / filtered["egress_tuples"]
    lines = [
        (
            f"{row['label']:<10} egress_tuples={row['egress_tuples']:>7} "
            f"sends={row['egress_batches']:>5} events={row['events_fired']:>6} "
            f"tuples/s={row['tuples_per_second']:>8.0f} Proc_new={row['proc_new']:.3f}s "
            f"consistent={'yes' if row['consistent'] else 'NO'}"
        )
        for row in rows
    ]
    lines.append(
        f"filtered vs multicast: {drop:.2f}x fewer split-egress tuples, "
        f"ledgers identical={multicast['ledger'] == filtered['ledger']}"
    )
    print_results(
        f"Filtered subscriptions: shard({SHARDS}) split egress, multicast vs filtered",
        lines,
    )

    for row in rows:
        label = row["label"]
        benchmark.extra_info[f"{label}_split_egress_tuples"] = row["egress_tuples"]
        benchmark.extra_info[f"{label}_events"] = row["events_fired"]
        benchmark.extra_info[f"{label}_proc_new"] = round(row["proc_new"], 6)
        benchmark.extra_info[f"{label}_stable_tuples"] = row["stable_tuples"]
    benchmark.extra_info["egress_drop"] = round(drop, 3)

    # Routing is a pure data-path optimization: identical merged ledger.
    assert multicast["ledger"] == filtered["ledger"]
    for row in rows:
        assert row["consistent"], row["label"]
        assert row["proc_new"] < BOUND_X, f"{row['label']}: {row['proc_new']:.3f}"
    # The headline claim: the split stops over-sending N-fold.
    assert drop >= MIN_EGRESS_DROP, f"split egress only dropped {drop:.2f}x"


def test_live_rebalance_consistency(run_once, benchmark):
    results = run_once(
        lambda: [rebalance_run(seed, shards=SHARDS) for seed in REBALANCE_SEEDS]
    )
    lines = []
    for seed, result in zip(REBALANCE_SEEDS, results):
        rebalance = result.extra["rebalance"]
        lines.append(result.row())
        lines.append(
            f"    seed={seed} moves={rebalance['moves']} "
            f"imbalance {rebalance['imbalance_before']:.3f} -> {rebalance['imbalance_after']:.3f} "
            f"shipped={rebalance['state_tuples_shipped']} completed={rebalance['completed']}"
        )
    print_results(
        "Live rebalance: skewed hot-key load, mid-run bucket handoff between shards",
        lines,
    )

    for seed, result in zip(REBALANCE_SEEDS, results):
        label = f"rebalance seed={seed}"
        rebalance = result.extra["rebalance"]
        assert not rebalance["noop"], label
        assert rebalance["moves"] > 0, label
        assert rebalance["imbalance_after"] < rebalance["imbalance_before"], label
        assert rebalance["completed"], label
        # The handoff neither loses nor duplicates anything: the merged
        # ledger reconciles gap-free, duplicate-free, and ordered.
        assert result.eventually_consistent, label
        # Every replica group ends the run STABLE (the handoff is not a failure).
        for name, states in result.extra["shard_states"].items():
            assert all(state == "stable" for state in states), f"{label}: {name}={states}"
    benchmark.extra_info["rebalance_seed1_stable_tuples"] = results[0].n_stable
    benchmark.extra_info["rebalance_seed1_proc_new"] = round(results[0].proc_new, 6)
