"""Diamond DAG: branch-kill availability and reconvergent reconciliation.

Not a paper figure: the paper evaluates single nodes and chains, but its
query diagrams are general DAGs (and Section 6.3 / Figure 21 reason about
reconvergent paths).  This benchmark deploys the diamond topology -- ingest
fans out to two partitioned branches, a fan-in SUnion re-merges them -- and
kills *every* replica of one branch, so the merge cannot mask the failure by
switching upstream replicas.

Asserted properties (the DPC guarantees, transplanted to a DAG):

* the unaffected branch never produces a tentative tuple and ends STABLE;
* the client's Proc_new stays within the availability bound X while the
  failed branch's slice is processed tentatively;
* after the branch recovers, reconciliation converges: the client's stable
  ledger is gap-free, duplicate-free, and ordered (eventual consistency).
"""

from __future__ import annotations

from conftest import full_sweep, print_results

from repro.experiments import diamond_sweep

DURATIONS_QUICK = (4.0, 8.0)
DURATIONS_FULL = (4.0, 8.0, 16.0, 30.0)


def test_diamond_branch_crash(run_once, benchmark):
    durations = DURATIONS_FULL if full_sweep() else DURATIONS_QUICK
    results = run_once(diamond_sweep, durations, seed=1)
    for result in results:
        # Deterministic metrics tracked against BENCH_baseline.json by
        # check_bench_regression.py.
        key = f"failure_{result.failure_duration:g}s"
        benchmark.extra_info[f"{key}_events"] = result.extra["events_fired"]
        benchmark.extra_info[f"{key}_proc_new"] = round(result.proc_new, 6)
        benchmark.extra_info[f"{key}_stable_tuples"] = result.n_stable
    lines = [r.row() for r in results]
    for result in results:
        branches = result.extra["branches"]
        lines.append(
            f"    branches tentative: "
            + ", ".join(f"{name}={counts['tentative']}" for name, counts in branches.items())
        )
    print_results(
        "Diamond DAG: both replicas of 'left' crashed; 'right' must stay stable", lines
    )

    for result in results:
        label = f"diamond failure={result.failure_duration:g}s"
        # Reconciliation must converge after the branch recovers.
        assert result.eventually_consistent, label
        branches = result.extra["branches"]
        # The unaffected branch's output is never in doubt.
        assert branches["right"]["tentative"] == 0, label
        assert branches["right"]["stable"] > 0, label
        # The failed branch's slice goes tentative at the merge.
        assert branches["merge"]["tentative"] > 0, label
        # Availability: Proc_new within the end-to-end bound X.
        assert result.proc_new < result.extra["availability_bound"], label
        # Every replica group has settled back to STABLE.
        for name, states in result.extra["branch_states"].items():
            assert all(state == "stable" for state in states), f"{label}: {name}={states}"
