#!/usr/bin/env python
"""Benchmark trend tracking: diff bench JSON against the checked-in baseline.

The benchmarks record their *deterministic* metrics (simulator event counts,
Proc_new, delivered stable tuples) in pytest-benchmark ``extra_info``;
``BENCH_baseline.json`` pins the expected values per test.  This script
compares one or more freshly produced ``--benchmark-json`` files against the
baseline and fails (exit code 1) when a tracked metric *regresses* by more
than the tolerance -- by default 10%, the threshold CI enforces.

Only metrics whose name marks them as regression-tracked are compared:

* ``*_events`` / ``*events_fired`` -- more simulator events means the
  transport or protocol grew chattier;
* ``*proc_new`` -- higher Proc_new means worse availability;
* ``*_stable_tuples`` -- *fewer* delivered stable tuples means the
  deployment stopped keeping up (inverted check);
* ``*_recovery_s`` -- longer modeled recovery time means a crashed replica
  takes longer to rejoin (the checkpoint-shipped recovery axis).

Improvements never fail the check; refresh the baseline deliberately with
``--write-baseline`` after a change that is supposed to move the numbers.

Usage::

    python check_bench_regression.py --baseline BENCH_baseline.json BENCH_shard.json
    python check_bench_regression.py --baseline BENCH_baseline.json --write-baseline *.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Default relative regression tolerance (10%).
DEFAULT_TOLERANCE = 0.10

#: Relative tolerance for the warn-only wall-clock metrics.  Deliberately
#: generous: CI runners are noisy and a wall-clock wobble must never fail the
#: build -- the fields exist so the baseline records the *trajectory* of the
#: hot path (and a genuine cliff shows up as a WARN in the job log).
DEFAULT_WALL_TOLERANCE = 0.50

#: Metric-name suffixes where *larger* is worse.  Only deterministic
#: simulation metrics are hard-tracked; wall-clock readings vary with the
#: host and are tracked warn-only (below) instead.
LARGER_IS_WORSE = ("_events", "events_fired", "proc_new", "_undos", "_recovery_s")

#: Metric-name suffixes where *smaller* is worse.
SMALLER_IS_WORSE = ("_stable_tuples",)

#: Warn-only wall-clock suffixes: larger wall time / smaller throughput is a
#: (soft) regression.
WALL_LARGER_IS_WORSE = ("_wall_ms",)
WALL_SMALLER_IS_WORSE = ("_tuples_per_sec",)


def tracked_direction(metric: str) -> int:
    """+1 when larger values regress, -1 when smaller values regress, 0 untracked."""
    if metric.endswith(LARGER_IS_WORSE):
        return 1
    if metric.endswith(SMALLER_IS_WORSE):
        return -1
    return 0


def wall_direction(metric: str) -> int:
    """Like :func:`tracked_direction` for the warn-only wall-clock metrics."""
    if metric.endswith(WALL_LARGER_IS_WORSE):
        return 1
    if metric.endswith(WALL_SMALLER_IS_WORSE):
        return -1
    return 0


def load_metrics(path: Path) -> dict[str, dict[str, float]]:
    """``{test_name: {metric: value}}`` from a pytest-benchmark JSON file."""
    data = json.loads(path.read_text(encoding="utf-8"))
    metrics: dict[str, dict[str, float]] = {}
    for bench in data.get("benchmarks", []):
        extra = {
            key: float(value)
            for key, value in (bench.get("extra_info") or {}).items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        if extra:
            metrics[bench["name"]] = extra
    return metrics


def merge_metrics(paths: list[Path]) -> dict[str, dict[str, float]]:
    merged: dict[str, dict[str, float]] = {}
    for path in paths:
        for test, extra in load_metrics(path).items():
            merged.setdefault(test, {}).update(extra)
    return merged


def compare(
    baseline: dict[str, dict[str, float]],
    current: dict[str, dict[str, float]],
    tolerance: float = DEFAULT_TOLERANCE,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
) -> tuple[list[str], list[str]]:
    """Return ``(regressions, report_lines)`` for ``current`` vs ``baseline``.

    Tests or metrics missing from the baseline are reported as new (never a
    failure: the baseline is refreshed when benchmarks are added); tracked
    baseline metrics -- or whole tracked benchmarks -- missing from the
    current run fail, so a benchmark cannot dodge tracking by silently
    dropping a metric or not running at all.

    Wall-clock metrics (``*_wall_ms`` / ``*_tuples_per_sec``) are compared
    **warn-only** against ``wall_tolerance``: a soft regression produces a
    ``WALL-CLOCK WARNING`` report line but never an entry in ``regressions``
    (and a missing wall metric is merely noted), so the noisy host-dependent
    trajectory is recorded without ever flaking CI.
    """
    regressions: list[str] = []
    lines: list[str] = []
    for test in sorted(set(baseline) | set(current)):
        if test not in baseline:
            lines.append(f"{test}: NEW (not in baseline)")
            continue
        if test not in current:
            if any(tracked_direction(metric) for metric in baseline[test]):
                # A tracked benchmark that simply was not run would silently
                # disable the gate for all of its metrics.
                regressions.append(f"{test}: tracked benchmark missing from the current run")
            else:
                lines.append(f"{test}: not measured this run")
            continue
        for metric in sorted(set(baseline[test]) | set(current[test])):
            direction = tracked_direction(metric)
            soft = wall_direction(metric) if direction == 0 else 0
            if direction == 0 and soft == 0:
                continue
            if metric not in baseline[test]:
                lines.append(f"{test}.{metric}: NEW (not in baseline)")
                continue
            base = baseline[test][metric]
            if metric not in current[test]:
                if direction:
                    regressions.append(f"{test}.{metric}: missing from the current run")
                else:
                    lines.append(f"{test}.{metric}: wall-clock metric not measured this run")
                continue
            value = current[test][metric]
            if base == 0:
                # Signed growth from zero; `direction * change > tolerance`
                # below decides whether growth is a regression.
                change = 0.0 if value == base else float("inf") * (1 if value > base else -1)
            else:
                change = (value - base) / abs(base)
            if direction:
                regressed = direction * change > tolerance
                verdict = "REGRESSION" if regressed else "ok"
                lines.append(
                    f"{test}.{metric}: {base:g} -> {value:g} ({change:+.1%}) [{verdict}]"
                )
                if regressed:
                    regressions.append(
                        f"{test}.{metric}: {base:g} -> {value:g} ({change:+.1%}, "
                        f"tolerance {tolerance:.0%})"
                    )
            else:
                warned = soft * change > wall_tolerance
                verdict = "WALL-CLOCK WARNING" if warned else "wall ok"
                lines.append(
                    f"{test}.{metric}: {base:g} -> {value:g} ({change:+.1%}) [{verdict}]"
                )
    return regressions, lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", nargs="+", type=Path,
                        help="pytest-benchmark JSON file(s) produced with --benchmark-json")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).with_name("BENCH_baseline.json"),
                        help="baseline metrics file (default: BENCH_baseline.json here)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="relative regression tolerance (default 0.10 = 10%%)")
    parser.add_argument("--wall-tolerance", type=float, default=DEFAULT_WALL_TOLERANCE,
                        help="warn-only tolerance for *_wall_ms / *_tuples_per_sec "
                             "metrics (default 0.50 = 50%%; never fails the check)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from the given results instead of checking")
    parser.add_argument("--subset", action="store_true",
                        help="compare only the benchmarks present in the current run; for "
                             "jobs that deliberately run a slice of the suite (e.g. the "
                             "live-smoke job), where the full-suite 'tracked benchmark "
                             "missing' gate does not apply")
    args = parser.parse_args(argv)

    current = merge_metrics(args.results)
    if args.write_baseline:
        args.baseline.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.baseline} ({sum(len(v) for v in current.values())} metrics)")
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --write-baseline first",
              file=sys.stderr)
        return 2
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    if args.subset:
        baseline = {test: extra for test, extra in baseline.items() if test in current}
    regressions, lines = compare(
        baseline, current, tolerance=args.tolerance, wall_tolerance=args.wall_tolerance
    )
    print(f"benchmark trend check vs {args.baseline.name} (tolerance {args.tolerance:.0%}, "
          f"wall-clock warn tolerance {args.wall_tolerance:.0%})")
    for line in lines:
        print(f"  {line}")
    if regressions:
        print(f"\n{len(regressions)} regression(s):", file=sys.stderr)
        for regression in regressions:
            print(f"  {regression}", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
