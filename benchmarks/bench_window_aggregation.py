"""Windowed aggregation: pane-based incremental path vs naive recompute.

Not a paper figure: ROADMAP item 5 calls for windowed-operator acceleration
with incremental aggregate maintenance.  The benchmark feeds identical
pre-generated batches (data tuples + interleaved boundaries) straight into
two ``Aggregate`` operators -- the pane path (per-(pane, group) mergeable
accumulators, O(1) per tuple) and the kept-for-reference naive path
(``incremental=False``: every tuple appended to every overlapping window's
buffer, full recompute at close) -- across three window shapes: tumbling,
sliding (100, 1), and sliding (60, 10).

Three properties are asserted, not just measured:

* the two paths emit **byte-identical** output ledgers (integer values, so
  every fold is exact);
* the pane path is at least ``MIN_SPEEDUP``x faster on the (100, 1) window,
  where naive recompute does ~100x redundant per-tuple work;
* pane-path state stays bounded by O(groups x panes) (via the operator's
  ``open_cell_count``), while the naive path's cells hold raw value buffers.

Wall-clock readings are best-of-``ROUNDS`` and recorded warn-only as
``*_wall_ms`` / ``*_tuples_per_sec``; the output-ledger counts are hard-fail
(``*_stable_tuples``) so a perf refactor can never silently change results.
"""

from __future__ import annotations

import math
import time

from conftest import full_sweep, print_results

from repro.spe.operators import Aggregate
from repro.spe.tuples import StreamTuple
from repro.spe.windows import WindowSpec

ROUNDS = 3
#: Data tuples fed to each operator per round (per window shape).
N_TUPLES = 12_000
#: Stime step between consecutive tuples.  The pane advantage scales with
#: tuple density per slide: at 50 tuples per 1s slide the naive path performs
#: ~100 cell updates per tuple while the pane path performs one, and the
#: per-close pane merges amortize over many tuples.
STEP = 0.02
#: Distinct group keys (the O(groups x panes) bound scales with this).
GROUPS = 4
BATCH_TUPLES = 256
BOUNDARY_INTERVAL = 10.0
#: Acceptance floor: pane path vs naive recompute on the (100, 1) window.
MIN_SPEEDUP = 5.0

#: (label, size, slide) -- the shapes the issue calls out.
CASES = (
    ("tumbling-60", 60.0, 60.0),
    ("sliding-100-1", 100.0, 1.0),
    ("sliding-60-10", 60.0, 10.0),
)

AGGREGATES = (
    ("n", "count", None),
    ("total", "sum", "v"),
    ("lo", "min", "v"),
    ("hi", "max", "v"),
)


def generate_batches(n_tuples: int) -> list[list[StreamTuple]]:
    """Pre-generated input: data batches with boundaries interleaved.

    Integer ``v`` values keep every arithmetic fold exact, so "identical"
    ledgers below means byte-identical, not approximately equal.
    """
    batches: list[list[StreamTuple]] = []
    pending: list[StreamTuple] = []
    next_boundary = BOUNDARY_INTERVAL
    for i in range(n_tuples):
        stime = i * STEP
        if stime >= next_boundary:
            pending.append(StreamTuple.boundary(1_000_000 + i, next_boundary))
            next_boundary += BOUNDARY_INTERVAL
        pending.append(StreamTuple.insertion(i, stime, {"v": i, "g": i % GROUPS}))
        if len(pending) >= BATCH_TUPLES:
            batches.append(pending)
            pending = []
    pending.append(StreamTuple.boundary(2_000_000, n_tuples * STEP + 1_000.0))
    batches.append(pending)
    return batches


def run_case_once(size: float, slide: float, incremental: bool | None, batches) -> dict:
    op = Aggregate(
        "bench",
        WindowSpec.sliding(size=size, slide=slide),
        aggregates=list(AGGREGATES),
        group_by=("g",),
        incremental=incremental,
    )
    ledger = []
    max_cells = 0
    started = time.perf_counter()
    for batch in batches:
        out = op.process_batch(0, batch)
        if out:
            ledger.extend(out)
        cells = op.open_cell_count
        if cells > max_cells:
            max_cells = cells
    wall = time.perf_counter() - started
    return {
        "wall_seconds": wall,
        "tuples_per_second": N_TUPLES / wall if wall > 0 else float("inf"),
        "ledger": [
            (item.stime, tuple(sorted(item.values.items()))) for item in ledger if item.is_data
        ],
        "max_cells": max_cells,
        "pane_mode": op.pane_mode,
    }


def best_case_run(size: float, slide: float, incremental: bool | None, batches, rounds) -> dict:
    best = None
    for _ in range(rounds):
        row = run_case_once(size, slide, incremental, batches)
        if best is None or row["tuples_per_second"] > best["tuples_per_second"]:
            best = row
    return best


def run_all(rounds: int) -> list[dict]:
    batches = generate_batches(N_TUPLES)
    rows = []
    for label, size, slide in CASES:
        pane = best_case_run(size, slide, None, batches, rounds)
        naive = best_case_run(size, slide, False, batches, rounds)
        spec = WindowSpec.sliding(size=size, slide=slide)
        rows.append(
            {
                "label": label,
                "size": size,
                "slide": slide,
                "panes_per_window": spec.pane.per_window,
                "pane_size": spec.pane.size,
                "pane": pane,
                "naive": naive,
                "speedup": pane["tuples_per_second"] / naive["tuples_per_second"],
            }
        )
    return rows


def test_window_aggregation_pane_vs_naive(run_once, benchmark):
    rounds = ROUNDS * 2 if full_sweep() else ROUNDS
    rows = run_once(lambda: run_all(rounds))
    lines = []
    for row in rows:
        lines.append(
            f"{row['label']:<14} pane={row['pane']['tuples_per_second']:>9.0f}/s "
            f"naive={row['naive']['tuples_per_second']:>9.0f}/s "
            f"speedup={row['speedup']:>5.1f}x "
            f"cells pane={row['pane']['max_cells']:>4} naive={row['naive']['max_cells']:>5} "
            f"outputs={len(row['pane']['ledger'])}"
        )
    print_results("Windowed aggregation: pane accumulators vs naive recompute", lines)

    for row in rows:
        key = row["label"].replace("-", "_")
        benchmark.extra_info[f"window_{key}_pane_wall_ms"] = round(
            row["pane"]["wall_seconds"] * 1000, 3
        )
        benchmark.extra_info[f"window_{key}_pane_tuples_per_sec"] = round(
            row["pane"]["tuples_per_second"], 1
        )
        benchmark.extra_info[f"window_{key}_naive_wall_ms"] = round(
            row["naive"]["wall_seconds"] * 1000, 3
        )
        # Deterministic companions: output count and the pane state bound.
        benchmark.extra_info[f"window_{key}_stable_tuples"] = len(row["pane"]["ledger"])

        assert row["pane"]["pane_mode"] and not row["naive"]["pane_mode"]
        # Byte-identical output ledgers: same emission stimes, same values.
        assert row["pane"]["ledger"] == row["naive"]["ledger"], row["label"]
        # O(groups x panes) state: live panes span at most one window, plus
        # the panes accumulated since the last watermark collected them, plus
        # the pane still being filled.
        pane_bound = (
            row["panes_per_window"]
            + math.ceil(BOUNDARY_INTERVAL / row["pane_size"])
            + 1
        )
        assert row["pane"]["max_cells"] <= GROUPS * pane_bound, row["label"]

    by_label = {row["label"]: row for row in rows}
    heavy = by_label["sliding-100-1"]
    benchmark.extra_info["window_sliding_100_1_speedup"] = round(heavy["speedup"], 2)
    assert heavy["speedup"] >= MIN_SPEEDUP, (
        f"pane path is only {heavy['speedup']:.1f}x the naive recompute on the "
        f"(100, 1) window; the acceptance floor is {MIN_SPEEDUP}x"
    )
