"""Figure 11: eventual consistency under simultaneous failures.

Reproduces the two traces of Section 5.1: a single (unreplicated) processing
node whose input streams 1 and 3 fail either overlapping in time
(Figure 11(a)) or back-to-back, with the second failure starting during the
recovery from the first (Figure 11(b)).  The paper's claim is qualitative:
all tentative tuples are eventually corrected, no stable tuple is duplicated,
and a REC_DONE marks the end of each correction burst.
"""

from __future__ import annotations

from repro.experiments import eventual_consistency_trace

from conftest import print_results


def _summarize(result):
    points = result.series()
    tentative = [p for p in points if p[2] == "tentative"]
    stable = [p for p in points if p[2] == "insertion"]
    rec_done = [p for p in points if p[2] == "rec_done"]
    lines = [
        f"eventually consistent: {result.eventually_consistent}",
        f"tentative tuples: {result.n_tentative}",
        f"undo tuples: {result.n_undos}",
        f"REC_DONE markers: {result.n_rec_done} at t={[round(p[0], 2) for p in rec_done]}",
        f"stable points: {len(stable)}, tentative points: {len(tentative)}",
        f"reconciliations: {result.reconciliations}",
        "trace sample (time, seq, type):",
    ]
    step = max(len(points) // 12, 1)
    for point in points[::step][:12]:
        lines.append(f"  t={point[0]:7.2f}  seq={point[1]!s:>8}  {point[2]}")
    return lines


def test_fig11a_overlapping_failures(run_once):
    result = run_once(
        eventual_consistency_trace,
        overlapping=True,
        aggregate_rate=150.0,
        first_failure_duration=10.0,
    )
    print_results("Figure 11(a): overlapping failures", _summarize(result))
    assert result.eventually_consistent
    assert result.n_tentative > 0
    assert result.n_rec_done >= 1


def test_fig11b_failure_during_recovery(run_once):
    result = run_once(
        eventual_consistency_trace,
        overlapping=False,
        aggregate_rate=150.0,
        first_failure_duration=10.0,
    )
    print_results("Figure 11(b): failure during recovery", _summarize(result))
    assert result.eventually_consistent
    assert result.n_tentative > 0
    assert result.n_rec_done >= 1
