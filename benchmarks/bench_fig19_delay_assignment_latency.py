"""Figure 19: Proc_new on a chain of four nodes for different delay assignments.

With an end-to-end budget of X = 8 s, the paper compares assigning D = 2 s to
each of the four nodes against assigning (almost) the whole budget, 6.5 s, to
every SUnion.  All variants must meet the 8-second availability requirement.
"""

from __future__ import annotations

from conftest import full_sweep, print_results

from repro.experiments import fig19_20, format_table

DURATIONS_QUICK = (5.0, 10.0)
DURATIONS_FULL = (5.0, 10.0, 15.0, 30.0)


def test_fig19_delay_assignment_latency(run_once):
    durations = DURATIONS_FULL if full_sweep() else DURATIONS_QUICK
    results = run_once(fig19_20, durations, depth=4)
    print_results(
        "Figure 19: Proc_new for delay assignments on a 4-node chain (X = 8 s)",
        [format_table("paper: every assignment meets the 8 s budget", results)],
    )
    for result in results:
        assert result.eventually_consistent, result.label
        if "Delay & Delay" in result.label:
            # The continuously-delaying baseline adds its per-node serialization
            # overhead (tentative-bucket wait, bucket/boundary delays) on top of
            # the 0.9 * D it deliberately spends at every node.  On the simulator
            # that fixed per-node overhead is proportionally larger than on the
            # paper's testbed, so the depth-4 chain lands slightly above the
            # nominal 8 s; we allow ~0.8 s of overhead per node (documented in
            # EXPERIMENTS.md).
            bound = result.chain_depth * (2.0 + 0.8)
        else:
            # Availability requirement for the Process variants: the incremental
            # delay stays within X = 8 s (plus normal processing latency).
            bound = 9.0
        assert result.proc_new < bound, (result.label, result.proc_new)

    by = {(r.label, r.failure_duration): r for r in results}
    duration = durations[-1]
    uniform = by[("Process & Process, D=2s each", duration)]
    full = by[("Process & Process, D=6.5s each", duration)]
    # Assigning the whole budget leads to a larger initial suspension ...
    assert full.proc_new >= uniform.proc_new
