"""Ablation: how many replicas per node does DPC need?

Section 5.2 relies on having at least two replicas of each processing node:
while one replica reconciles its state, the other keeps processing the most
recent input, so the client never waits for a reconciliation.  This benchmark
sweeps the replication factor and checks that the paper's availability result
(Table III) indeed needs two replicas: a single replica stays eventually
consistent but cannot bound Proc_new independent of the failure duration once
reconciliation outlasts the delay budget.
"""

from __future__ import annotations

from conftest import full_sweep, print_results

from repro.experiments import format_table, replica_sweep

COUNTS_QUICK = (1, 2)
COUNTS_FULL = (1, 2, 3)


def test_ablation_replica_count(run_once):
    counts = COUNTS_FULL if full_sweep() else COUNTS_QUICK
    results = run_once(replica_sweep, counts, failure_duration=12.0)
    print_results(
        "Ablation: replicas per processing node (12 s failure, X = 3 s)",
        [format_table("paper: two replicas keep Proc_new flat at ~2.8 s", results)],
    )
    by_label = {result.label: result for result in results}
    for result in results:
        assert result.eventually_consistent, result.label

    replicated = by_label["2 replicas"]
    single = by_label["1 replica"]
    # Two replicas meet the bound; this is the Table III availability result.
    assert replicated.proc_new < 3.75
    # A single replica is never better than the replicated deployment: it has
    # to stop serving new data while it reconciles.
    assert single.proc_new >= replicated.proc_new - 0.25
    if "3 replicas" in by_label:
        assert by_label["3 replicas"].proc_new < 3.75
