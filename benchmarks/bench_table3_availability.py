"""Table III: Proc_new for different failure durations (one replicated node).

The paper reports that, with two replicas and X = 3 s, Proc_new stays at
roughly 2.8 s regardless of failure duration (2 s to 60 s): the replicas take
turns reconciling so the client always has access to recent data.  We check
the same flatness: Proc_new must stay below the 3 s + normal-processing
envelope for every failure duration and must not grow with it.
"""

from __future__ import annotations

from conftest import full_sweep, print_results

from repro.experiments import format_table, table3

DURATIONS_QUICK = (2, 8, 16, 30, 60)
DURATIONS_FULL = (2, 4, 6, 8, 10, 12, 14, 16, 30, 45, 60)


def test_table3_proc_new_constant_under_failures(run_once):
    durations = DURATIONS_FULL if full_sweep() else DURATIONS_QUICK
    results = run_once(table3, durations)
    print_results(
        "Table III: Proc_new vs failure duration (X = 3 s, 1 replicated node)",
        [format_table("paper: Proc_new ~= 2.8 s for all durations", results)],
    )
    for result in results:
        assert result.eventually_consistent, f"not consistent for {result.failure_duration}s"
        # Availability: Delay_new < X.  Normal processing latency in this
        # deployment is a few hundred milliseconds, so Proc_new must stay
        # below X + 0.75 s for every failure duration.
        assert result.proc_new < 3.75, f"availability violated for {result.failure_duration}s"
    # The defining property of Table III: latency does not grow with failure
    # duration.  In the paper a 2-second failure is fully masked by the
    # initial suspension (Proc_new = 2.2 s) while every longer failure costs
    # the same 2.8 s; we therefore check flatness over the failures that
    # exceed the availability bound X and that short failures never cost more
    # than long ones.
    unmasked = [r.proc_new for r in results if r.failure_duration > 3.0]
    masked = [r.proc_new for r in results if r.failure_duration <= 3.0]
    assert max(unmasked) <= min(unmasked) * 1.2 + 0.3
    if masked:
        assert max(masked) <= max(unmasked) + 0.1
