"""Table V: serialization latency overhead as a function of the boundary interval.

Same setup as Table IV but with the bucket size fixed at 10 ms and the
boundary-tuple interval varying: a bucket only becomes stable when a boundary
with a sufficiently large stime arrives, so the latency grows roughly linearly
with the boundary interval as well.
"""

from __future__ import annotations

from conftest import full_sweep, print_results

from repro.experiments import table5

INTERVALS_QUICK = (0.01, 0.1, 0.2, 0.5)
INTERVALS_FULL = (0.01, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5)


def test_table5_boundary_interval_overhead(run_once):
    intervals = INTERVALS_FULL if full_sweep() else INTERVALS_QUICK
    rows = run_once(table5, intervals, duration=20.0)
    print_results(
        "Table V: latency overhead vs boundary interval (bucket size = 10 ms)",
        [row.row("interval") for row in rows],
    )
    baseline, measured = rows[0], rows[1:]
    for row in measured:
        assert row.latency.average >= baseline.latency.average

    averages = [row.latency.average for row in measured]
    assert averages == sorted(averages)
    maxima = [row.latency.maximum for row in measured]
    assert maxima == sorted(maxima)
    small, large = measured[0], measured[-1]
    assert large.latency.maximum - small.latency.maximum > 0.5 * (
        large.parameter_ms - small.parameter_ms
    ) / 1000.0
