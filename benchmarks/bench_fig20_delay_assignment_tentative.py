"""Figure 20: N_tentative for the delay-assignment strategies of Section 6.3.

Paper finding: giving each SUnion the whole incremental budget (6.5 s of the
8 s requirement) is the only strategy that completely masks a 5-second failure
(zero tentative tuples) while performing no worse than the others for longer
failures.
"""

from __future__ import annotations

from conftest import full_sweep, print_results

from repro.experiments import fig19_20, format_table

DURATIONS_QUICK = (5.0, 15.0)
DURATIONS_FULL = (5.0, 10.0, 15.0, 30.0)


def test_fig20_delay_assignment_tentative(run_once):
    durations = DURATIONS_FULL if full_sweep() else DURATIONS_QUICK
    results = run_once(fig19_20, durations, depth=4)
    print_results(
        "Figure 20: N_tentative for delay assignments on a 4-node chain (X = 8 s)",
        [format_table("paper: whole-budget assignment masks the 5 s failure entirely", results)],
    )
    by = {(r.label, r.failure_duration): r for r in results}
    for result in results:
        assert result.eventually_consistent, result.label

    # The whole-budget assignment masks the 5-second failure completely.
    assert by[("Process & Process, D=6.5s each", 5.0)].n_tentative == 0
    # The uniform 2-second assignment does not.
    assert by[("Process & Process, D=2s each", 5.0)].n_tentative > 0

    # For longer failures the whole-budget assignment is not (much) worse than
    # the per-node assignment with eager processing.
    longest = durations[-1]
    full_budget = by[("Process & Process, D=6.5s each", longest)].n_tentative
    uniform = by[("Process & Process, D=2s each", longest)].n_tentative
    assert full_budget <= uniform * 1.25 + 100
