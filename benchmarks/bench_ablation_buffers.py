"""Ablation (Section 8.1): buffer management.

The paper proposes truncating output buffers as downstream neighbors
acknowledge data, and bounding them for convergent-capable diagrams.  This
benchmark measures the output-buffer footprint with and without periodic
truncation during a failure-free run, and verifies that truncation keeps the
buffer bounded without affecting what the client receives.
"""

from __future__ import annotations

from conftest import print_results

from repro.runtime import ScenarioSpec


def _run(truncate: bool) -> dict:
    runtime = ScenarioSpec.single_node(
        name="buffer-truncation", replicated=False, aggregate_rate=150.0, duration=30.0
    ).build()
    node = runtime.node(0, 0)
    if truncate:
        runtime.simulator.schedule_periodic(
            1.0,
            lambda now: [m.truncate_delivered() for m in node.data_path.outputs()],
            description="truncate output buffers",
        )
    runtime.run()
    manager = node.data_path.outputs()[0]
    return {
        "buffered": manager.buffered_tuples,
        "stable_received": runtime.client.metrics.consistency.total_stable,
        "proc_new": runtime.client.proc_new,
    }


def test_ablation_buffer_truncation(run_once):
    results = run_once(lambda: {"kept": _run(False), "truncated": _run(True)})
    kept, truncated = results["kept"], results["truncated"]
    print_results(
        "Ablation: output-buffer truncation (Section 8.1)",
        [
            f"without truncation: buffered={kept['buffered']} tuples, client stable={kept['stable_received']}",
            f"with truncation:    buffered={truncated['buffered']} tuples, client stable={truncated['stable_received']}",
        ],
    )
    # Truncation keeps the buffer an order of magnitude smaller ...
    assert truncated["buffered"] < kept["buffered"] / 5
    # ... without changing what the client receives.
    assert abs(truncated["stable_received"] - kept["stable_received"]) <= kept["stable_received"] * 0.05
