"""Elastic scale-out / scale-in under a load surge (the autoscaler loop).

Not a paper figure: the paper's evaluation holds the deployment fixed, but
the ROADMAP's production north-star needs elasticity.  This benchmark drives
the surge-and-subside schedule of ``autoscale_run``: a zipfian hot-key
workload doubles its rate mid-run, the autoscaler's watermark loop reacts by
attaching shard fragments live (seeded cursors, widened merge fan-in, priced
state handoff), and when the surge subsides it drains and decommissions the
extra fragments again.  Asserted across determinism seeds:

* the deployment scales out beyond its initial shard count and returns to
  it within the run (the elastic round trip actually happens);
* every handoff completes and none aborts on this failure-free schedule;
* the merged ledger stays gap-free, duplicate-free, and ordered -- the
  elastic round trip loses and duplicates nothing.

The simulator event counts, Proc_new, and delivered stable tuples recorded
in ``extra_info`` are deterministic and tracked against
``BENCH_baseline.json`` by ``check_bench_regression.py``; wall-clock is
recorded warn-only.
"""

from __future__ import annotations

from conftest import full_sweep, print_results

from repro.experiments import autoscale_run

SEEDS_QUICK = (1, 2)
SEEDS_FULL = (1, 2, 3, 4)


def test_autoscale_surge_round_trip(run_once):
    seeds = SEEDS_FULL if full_sweep() else SEEDS_QUICK

    def sweep():
        return [(seed, autoscale_run(seed)) for seed in seeds]

    results = run_once(sweep)
    lines = []
    for seed, result in results:
        autoscale = result.extra["autoscale"]
        lines.append(result.row())
        lines.append(
            f"    seed={seed} shards 2 -> {autoscale['peak_shards']} -> "
            f"{autoscale['final_shards']} actions={len(autoscale['actions'])} "
            f"handoffs={autoscale['handoffs_completed']} "
            f"aborts={autoscale['handoff_aborts']} "
            f"state_shipped={autoscale['state_tuples_shipped']}"
        )
    print_results(
        "Elasticity: autoscaler round trip under a 2x surge (2 shards -> peak -> 2)",
        lines,
    )

    for seed, result in results:
        label = f"autoscale seed={seed}"
        autoscale = result.extra["autoscale"]
        assert autoscale["peak_shards"] > 2, label
        assert autoscale["final_shards"] == 2, label
        assert autoscale["handoff_aborts"] == 0, label
        assert autoscale["handoffs_completed"] >= 3, label
        assert result.eventually_consistent, label


def test_autoscale_trend_metrics(run_once, benchmark):
    result = run_once(lambda: autoscale_run(1))
    autoscale = result.extra["autoscale"]
    print_results(
        "Elasticity trend metrics (seed 1)",
        [
            result.row(),
            f"    events={result.extra['events_fired']} "
            f"scale_events={len(autoscale['scale_events'])} "
            f"shipped={autoscale['state_tuples_shipped']} "
            f"trimmed={autoscale['state_tuples_trimmed']}",
        ],
    )
    benchmark.extra_info["autoscale_events"] = result.extra["events_fired"]
    benchmark.extra_info["autoscale_proc_new"] = round(result.proc_new, 6)
    benchmark.extra_info["autoscale_stable_tuples"] = result.n_stable
    benchmark.extra_info["autoscale_peak_shards"] = autoscale["peak_shards"]
    benchmark.extra_info["autoscale_state_shipped"] = autoscale["state_tuples_shipped"]
    assert result.eventually_consistent
