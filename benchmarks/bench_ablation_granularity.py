"""Ablation (Section 8.2): per-stream vs node-wide failure granularity.

With per-stream granularity a node advertises the state of each output stream
separately, so downstream neighbors of outputs unaffected by a failure do not
observe it.  The deployments used in the paper's experiments have a single
output stream per node, so this ablation uses the mechanism directly: the
benchmark checks that advertising per-stream states does not change the
headline availability/consistency results.
"""

from __future__ import annotations

from conftest import print_results

from repro.config import DPCConfig, DelayPolicy
from repro.experiments import availability_run


def test_ablation_per_stream_granularity(run_once):
    def run_both():
        results = {}
        for per_stream in (False, True):
            config = DPCConfig(
                max_incremental_latency=3.0,
                delay_policy=DelayPolicy.process_process(),
                per_stream_granularity=per_stream,
            )
            results[per_stream] = availability_run(
                failure_duration=10.0,
                label=f"per_stream={per_stream}",
                aggregate_rate=150.0,
                config=config,
            )
        return results

    results = run_once(run_both)
    print_results(
        "Ablation: failure granularity (Section 8.2)",
        [results[False].row(), results[True].row()],
    )
    for result in results.values():
        assert result.eventually_consistent
        assert result.proc_new < 3.75
    # Same qualitative behaviour with either granularity.
    assert abs(results[True].n_tentative - results[False].n_tentative) <= max(
        200, 0.3 * results[False].n_tentative
    )
