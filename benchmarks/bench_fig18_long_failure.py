"""Figure 18: N_tentative during a long-duration (60 s) failure.

Paper finding: for long failures the benefit of delaying almost disappears --
the difference between Delay & Delay and Process & Process shrinks to roughly
the delay imposed by the last node in the chain, independent of depth, so
delaying sacrifices availability without a meaningful consistency gain.
"""

from __future__ import annotations

from conftest import full_sweep, print_results

from repro.experiments import fig18, format_table

DEPTHS_QUICK = (1, 4)
DEPTHS_FULL = (1, 2, 3, 4)


def test_fig18_long_failure(run_once):
    depths = DEPTHS_FULL if full_sweep() else DEPTHS_QUICK
    results = run_once(fig18, depths, failure_duration=60.0)
    print_results(
        "Figure 18: N_tentative for a 60 s failure (D = 2 s per node)",
        [format_table("paper: delaying no longer helps for long failures", results)],
    )
    by = {(r.label, r.chain_depth): r for r in results}
    for result in results:
        assert result.eventually_consistent, result.label

    for depth in depths:
        process = by[(f"Process & Process (depth {depth})", depth)]
        delay = by[(f"Delay & Delay (depth {depth})", depth)]
        saving = process.n_tentative - delay.n_tentative
        # The relative gain of delaying is small for long failures: less than
        # 20% of the tentative tuples (the paper calls it negligible).
        assert saving <= 0.2 * process.n_tentative + 100, (depth, saving)
