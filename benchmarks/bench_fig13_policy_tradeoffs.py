"""Figure 13: availability/consistency trade-offs of the six delay policies.

A single replicated node with D = X = 3 s.  The paper's findings:

* every variant fully masks failures shorter than D (no tentative tuples);
* Process & Process and Delay & Delay meet the availability bound for every
  failure duration; Delay & Delay produces the fewest tentative tuples;
* Delay & Suspend breaks the availability requirement, and Process & Suspend
  breaks it once reconciliation takes longer than D (failures around 8 s and
  beyond).
"""

from __future__ import annotations

from conftest import full_sweep, print_results

from repro.config import DelayPolicy
from repro.experiments import fig13, format_table

POLICIES_QUICK = {
    "Process & Process": DelayPolicy.process_process(),
    "Delay & Delay": DelayPolicy.delay_delay(),
    "Process & Suspend": DelayPolicy.process_suspend(),
    "Delay & Suspend": DelayPolicy.delay_suspend(),
}
DURATIONS_QUICK = (2.0, 10.0, 30.0)
DURATIONS_FULL = (2.0, 6.0, 10.0, 14.0, 30.0, 60.0)
RATE = 300.0


def test_fig13_policy_tradeoffs(run_once):
    durations = DURATIONS_FULL if full_sweep() else DURATIONS_QUICK
    policies = None if full_sweep() else POLICIES_QUICK
    results = run_once(fig13, durations, policies, aggregate_rate=RATE)
    print_results(
        "Figure 13: Proc_new and N_tentative per delay policy (D = 3 s)",
        [format_table("per-policy results", results)],
    )
    by_policy = {}
    for result in results:
        by_policy.setdefault(result.label, {})[result.failure_duration] = result

    # (1) Failures shorter than D are fully masked by every policy.
    for label, rows in by_policy.items():
        assert rows[2.0].n_tentative == 0, f"{label} did not mask a 2 s failure"
        assert rows[2.0].eventually_consistent

    # (2) Process & Process and Delay & Delay always meet the availability bound.
    for label in ("Process & Process", "Delay & Delay"):
        for duration, row in by_policy[label].items():
            assert row.proc_new < 4.0, f"{label} broke availability at {duration}s"
            assert row.eventually_consistent

    # (3) Delaying produces no more tentative tuples than processing eagerly.
    for duration in durations:
        if duration <= 3.0:
            continue
        delay = by_policy["Delay & Delay"][duration].n_tentative
        process = by_policy["Process & Process"][duration].n_tentative
        assert delay <= process, f"Delay & Delay should not exceed Process & Process at {duration}s"

    # (4) Suspending during stabilization violates availability for long failures.
    if "Delay & Suspend" in by_policy:
        longest = max(by_policy["Delay & Suspend"])
        assert by_policy["Delay & Suspend"][longest].proc_new > 4.0
