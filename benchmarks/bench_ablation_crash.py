"""Ablation: fail-stop crash of the replica a client reads from (Section 4.5).

The availability experiments of the paper fail *input streams*; this
benchmark instead crashes the processing-node replica the client is
subscribed to.  DPC must mask the crash entirely: the client's consistency
manager detects the missing heartbeats and switches to the surviving replica,
which has been processing the same input all along, so no tentative tuples
are produced and the availability bound holds throughout.
"""

from __future__ import annotations

from conftest import print_results

from repro.experiments import crash_failover


def test_ablation_crash_failover(run_once):
    result = run_once(crash_failover, crash_duration=15.0)
    print_results(
        "Ablation: crash of the client's upstream replica (15 s)",
        [result.row(), f"upstream switches performed by the client: {result.extra['switches']}"],
    )
    assert result.eventually_consistent
    # The surviving replica masks the crash: no tentative output at all and
    # the availability bound holds.
    assert result.n_tentative == 0
    assert result.proc_new < 3.75
    assert result.extra["switches"] >= 1
