"""Figure 16: N_tentative vs chain depth for short-duration failures.

Paper findings: for short failures (5-30 s), continuously delaying tuples
(Delay & Delay) produces fewer tentative tuples than processing them eagerly
(Process & Process), and the savings are roughly proportional to the total
delay through the chain.
"""

from __future__ import annotations

from conftest import full_sweep, print_results

from repro.experiments import fig16, format_table

DURATIONS_QUICK = (5.0, 15.0)
DURATIONS_FULL = (5.0, 10.0, 15.0, 30.0)
DEPTHS_QUICK = (1, 2, 4)
DEPTHS_FULL = (1, 2, 3, 4)


def test_fig16_tentative_vs_depth(run_once):
    durations = DURATIONS_FULL if full_sweep() else DURATIONS_QUICK
    depths = DEPTHS_FULL if full_sweep() else DEPTHS_QUICK
    results = run_once(fig16, durations, depths)
    print_results(
        "Figure 16: N_tentative vs chain depth (D = 2 s per node)",
        [format_table("paper: delaying reduces N_tentative for short failures", results)],
    )
    by = {(r.label, r.failure_duration): r for r in results}
    for result in results:
        assert result.eventually_consistent, result.label

    for duration in durations:
        for depth in depths:
            process = by[(f"Process & Process (depth {depth})", duration)]
            delay = by[(f"Delay & Delay (depth {depth})", duration)]
            # Delaying never produces *more* tentative tuples for short failures.
            assert delay.n_tentative <= process.n_tentative, (duration, depth)

    # The savings grow with the depth of the chain (total delay through it).
    deepest, shallowest = max(depths), min(depths)
    duration = durations[0]
    saving_deep = (
        by[(f"Process & Process (depth {deepest})", duration)].n_tentative
        - by[(f"Delay & Delay (depth {deepest})", duration)].n_tentative
    )
    saving_shallow = (
        by[(f"Process & Process (depth {shallowest})", duration)].n_tentative
        - by[(f"Delay & Delay (depth {shallowest})", duration)].n_tentative
    )
    assert saving_deep >= saving_shallow
